"""The asyncio :class:`StoreServer` with both client flavours.

Each test runs its own event loop (``asyncio.run``) with the server
and the async client on the same loop; the blocking client is driven
from an executor thread so its socket calls cannot starve the loop.
"""

import asyncio
import struct

import pytest

from repro.api import AsyncStoreClient, StoreClient, StoreServer, protocol
from repro.errors import (
    DurabilityError,
    ProtocolError,
    QuerySyntaxError,
    ReproError,
    WalPoisonedError,
)
from repro.pul.ops import Rename
from repro.pul.pul import PUL
from repro.pul.serialize import pul_to_xml
from repro.store import DocumentStore
from repro.xdm.parser import parse_document

DOC = "<bib><paper><title>T1</title></paper></bib>"


def run(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_server(**store_kwargs):
    store_kwargs.setdefault("workers", 2)
    store_kwargs.setdefault("backend", "serial")
    return StoreServer(DocumentStore(**store_kwargs),
                       host="127.0.0.1", port=0)


def title_rename_pul(origin=None):
    document = parse_document(DOC)
    title = next(n for n in document.nodes()
                 if n.is_element and n.name == "title")
    return PUL([Rename(title.node_id, "headline")], origin=origin)


async def connect(server, **kwargs):
    host, port = server.tcp_address
    return await AsyncStoreClient.connect(host=host, port=port, **kwargs)


class TestSession:
    def test_full_session(self):
        async def scenario():
            async with make_server() as server:
                client = await connect(server, client="alice")
                assert client.protocol_version == \
                    protocol.PROTOCOL_VERSION
                opened = await client.open("d1", DOC)
                assert opened == {"doc_id": "d1", "nodes": 4,
                                  "version": 0}
                queued = await client.submit("d1", title_rename_pul())
                assert queued["depth"] == 1
                flushed = await client.flush("d1")
                assert flushed["flushed"] and flushed["version"] == 1
                assert flushed["relabel"] == "incremental"
                text = (await client.text("d1"))["text"]
                assert "<headline>T1</headline>" in text
                stats = await client.stats("d1")
                assert stats["stats"][0]["version"] == 1
                assert (await client.docs()) == {"docs": ["d1"]}
                assert (await client.discard("d1"))["discarded"] == 0
                idle = await client.flush("d1")
                assert idle == {"doc_id": "d1", "flushed": False}
                await client.aclose()
        run(scenario())

    def test_submit_accepts_pul_objects_and_text(self):
        async def scenario():
            async with make_server() as server:
                client = await connect(server)
                await client.open("d1", DOC)
                await client.submit("d1", title_rename_pul())
                await client.submit("d1",
                                    pul_to_xml(title_rename_pul()))
                assert (await client.stats("d1")
                        )["stats"][0]["pending"] == 2
                await client.aclose()
        run(scenario())

    def test_xquery_submission_compiles_server_side(self):
        async def scenario():
            async with make_server() as server:
                client = await connect(server, client="alice")
                await client.open("d1", DOC)
                queued = await client.submit_xquery(
                    "d1", 'rename node /bib/paper/title as "headline"')
                assert queued == {"doc_id": "d1", "ops": 1, "depth": 1}
                await client.flush("d1")
                text = (await client.text("d1"))["text"]
                assert "<headline>" in text
                await client.aclose()
        run(scenario())

    def test_pipelined_requests_execute_in_order(self):
        async def scenario():
            async with make_server() as server:
                client = await connect(server, client="alice")
                await client.open("d1", DOC)
                results = await asyncio.gather(*[
                    client.submit_xquery(
                        "d1",
                        'insert node <x/> as last into /bib/paper')
                    for __ in range(8)])
                assert sorted(r["depth"] for r in results) == \
                    list(range(1, 9))
                flushed = await client.flush("d1")
                assert flushed["version"] == 1
                await client.aclose()
        run(scenario())

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "store.sock")

        async def scenario():
            server = StoreServer(
                DocumentStore(workers=2, backend="serial"),
                unix_path=path)
            async with server:
                client = await AsyncStoreClient.connect(unix_path=path)
                await client.open("d1", DOC)
                assert (await client.docs()) == {"docs": ["d1"]}
                await client.aclose()
        run(scenario())

    def test_sync_client_same_surface_from_a_thread(self):
        async def scenario():
            async with make_server() as server:
                host, port = server.tcp_address

                def blocking_session():
                    with StoreClient.connect(host=host, port=port,
                                             client="bob") as client:
                        assert client.protocol_version == \
                            protocol.PROTOCOL_VERSION
                        client.open("d1", DOC)
                        client.submit_xquery(
                            "d1",
                            'rename node /bib/paper/title as "h"')
                        flushed = client.flush("d1")
                        assert flushed["version"] == 1
                        with pytest.raises(ReproError):
                            client.flush("ghost")
                        return client.text("d1")["text"]

                loop = asyncio.get_running_loop()
                text = await loop.run_in_executor(None,
                                                  blocking_session)
                assert "<h>T1</h>" in text
        run(scenario())


class TestClientIdentity:
    def test_session_identity_feeds_per_client_coalescing(self):
        """Two renames of one node are a sequential chain from one
        client (aggregated fine) but an incompatible parallel union
        from two clients — the connection's hello identity must be
        what the store coalesces on."""
        async def same_client():
            async with make_server() as server:
                first = await connect(server, client="alice")
                second = await connect(server, client="alice")
                await first.open("d1", DOC)
                await first.submit_xquery(
                    "d1", 'rename node /bib/paper/title as "a"')
                await second.submit_xquery(
                    "d1", 'rename node /bib/paper/title as "b"')
                flushed = await first.flush("d1")
                await first.aclose()
                await second.aclose()
                return flushed

        flushed = run(same_client())
        assert flushed["clients"] == 1 and flushed["flushed"]

        async def two_clients():
            async with make_server() as server:
                first = await connect(server, client="alice")
                second = await connect(server, client="bob")
                await first.open("d1", DOC)
                await first.submit_xquery(
                    "d1", 'rename node /bib/paper/title as "a"')
                await second.submit_xquery(
                    "d1", 'rename node /bib/paper/title as "b"')
                with pytest.raises(ReproError):
                    await first.flush("d1")
                await first.aclose()
                await second.aclose()
        run(two_clients())

    def test_anonymous_connections_get_distinct_identities(self):
        async def scenario():
            async with make_server() as server:
                first = await connect(server)
                second = await connect(server)
                assert first.client != second.client
                await first.aclose()
                await second.aclose()
        run(scenario())


class TestErrors:
    def test_remote_errors_reconstruct_their_subclass(self):
        async def scenario():
            async with make_server() as server:
                client = await connect(server)
                with pytest.raises(ReproError) as excinfo:
                    await client.flush("ghost")
                assert excinfo.value.code == "repro"
                await client.open("d1", DOC)
                with pytest.raises(QuerySyntaxError):
                    await client.submit_xquery("d1", "delete delete")
                with pytest.raises(DurabilityError) as excinfo:
                    await client.snapshot()
                assert excinfo.value.code == "durability"
                # the connection survived all of it
                assert (await client.docs()) == {"docs": ["d1"]}
                await client.aclose()
        run(scenario())

    def test_unknown_op_and_bad_args_are_protocol_errors(self):
        async def scenario():
            async with make_server() as server:
                client = await connect(server)
                with pytest.raises(ProtocolError):
                    await client._call("frobnicate")
                with pytest.raises(ProtocolError):
                    await client._call("flush")        # missing doc_id
                with pytest.raises(ProtocolError):
                    await client._call("docs", extra=1)
                # garbage argument *types* answer an error, never kill
                # the connection
                with pytest.raises(ReproError):
                    await client._call("open", doc_id=["x"], xml=DOC)
                assert (await client.docs()) == {"docs": []}
                await client.aclose()
        run(scenario())

    def test_wal_poisoned_store_answers_the_stable_code(self, tmp_path):
        """Regression (PR 4): flushing against a poisoned write-ahead
        log must answer the ``wal-poisoned`` error code over the wire,
        not tear the connection down with a traceback."""
        async def scenario():
            store = DocumentStore(workers=2, backend="serial",
                                  durability="log",
                                  wal_dir=str(tmp_path / "wal"))
            async with StoreServer(store, host="127.0.0.1",
                                   port=0) as server:
                client = await connect(server, client="alice")
                await client.open("d1", DOC)
                await client.submit("d1", title_rename_pul())
                store._durability._writer._broken = True
                with pytest.raises(WalPoisonedError) as excinfo:
                    await client.flush("d1")
                assert excinfo.value.code == "wal-poisoned"
                # the store rejected the batch but kept the queue and
                # the session: the connection still answers
                stats = await client.stats("d1")
                assert stats["stats"][0]["pending"] == 1
                await client.discard("d1")
                await client.aclose()
        run(scenario())


class TestMalformedStreams:
    async def _raw_connection(self, server):
        host, port = server.tcp_address
        return await asyncio.open_connection(host, port)

    def test_garbage_bytes_kill_only_that_connection(self):
        async def scenario():
            async with make_server() as server:
                healthy = await connect(server)
                reader, writer = await self._raw_connection(server)
                writer.write(b"\xff" * 64)
                await writer.drain()
                response = await reader.read(4096)
                # best-effort error frame, then EOF
                if response:
                    decoder = protocol.FrameDecoder()
                    (message,) = decoder.feed(response)
                    assert message["ok"] is False
                    assert message["error"]["code"] == "protocol"
                assert await reader.read(4096) == b""
                writer.close()
                # the store and the healthy session are unharmed
                await healthy.open("d1", DOC)
                assert (await healthy.docs()) == {"docs": ["d1"]}
                await healthy.aclose()
        run(scenario())

    def test_oversized_header_is_refused_without_buffering(self):
        async def scenario():
            async with make_server() as server:
                reader, writer = await self._raw_connection(server)
                writer.write(struct.pack(">I", protocol.MAX_FRAME + 1))
                await writer.drain()
                data = await reader.read(4096)
                if data:
                    assert await reader.read(4096) == b""
                writer.close()
        run(scenario())

    def test_torn_frame_at_eof_is_survived(self):
        async def scenario():
            async with make_server() as server:
                reader, writer = await self._raw_connection(server)
                frame = protocol.encode_frame(
                    protocol.hello_request(1))
                writer.write(frame[:len(frame) - 3])
                writer.close()
                await reader.read(4096)
                # a fresh connection still negotiates
                client = await connect(server)
                assert (await client.docs()) == {"docs": []}
                await client.aclose()
        run(scenario())

    def test_first_request_must_be_hello(self):
        async def scenario():
            async with make_server() as server:
                reader, writer = await self._raw_connection(server)
                writer.write(protocol.encode_frame(
                    protocol.request(1, "docs")))
                await writer.drain()
                decoder = protocol.FrameDecoder()
                data = await reader.read(4096)
                (message,) = decoder.feed(data)
                assert message["ok"] is False
                assert message["error"]["code"] == "protocol"
                assert await reader.read(4096) == b""
                writer.close()
        run(scenario())

    def test_version_mismatch_is_refused(self):
        async def scenario():
            async with make_server() as server:
                reader, writer = await self._raw_connection(server)
                writer.write(protocol.encode_frame(
                    protocol.hello_request(1, versions=(99,))))
                await writer.drain()
                decoder = protocol.FrameDecoder()
                (message,) = decoder.feed(await reader.read(4096))
                assert message["ok"] is False
                assert "version" in message["error"]["message"]
                writer.close()
        run(scenario())


class TestShutdown:
    def test_aclose_drains_pending_submissions(self, tmp_path):
        """Server-side drain-first shutdown: queued-but-unflushed
        submissions reach the write-ahead log before the store
        closes (the PR 3 semantics on the network transport)."""
        wal_dir = str(tmp_path / "wal")

        async def scenario():
            store = DocumentStore(workers=2, backend="serial",
                                  durability="log", wal_dir=wal_dir)
            server = StoreServer(store, host="127.0.0.1", port=0)
            await server.start()
            client = await connect(server, client="alice")
            await client.open("d1", DOC)
            await client.submit_xquery(
                "d1", 'rename node /bib/paper/title as "headline"')
            await client.aclose()
            await server.aclose()   # no explicit flush anywhere

        run(scenario())
        with DocumentStore(backend="serial", durability="log",
                           wal_dir=wal_dir) as recovered:
            assert recovered.version("d1") == 1
            assert "<headline>T1</headline>" in recovered.text("d1")

    def test_aclose_survives_a_silent_pre_hello_connection(self):
        """Regression: a connection that never sends its hello used to
        park ``aclose`` forever (the handler blocked in the negotiation
        read, and shutdown only cancelled the post-hello reader)."""
        async def scenario():
            server = make_server()
            await server.start()
            host, port = server.tcp_address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                await asyncio.wait_for(server.aclose(), 15)
            finally:
                writer.close()
        run(scenario())

    def test_oversized_result_degrades_to_an_error_response(
            self, monkeypatch):
        """Regression: a result too large to frame must answer a
        ``protocol`` error, not kill the connection with an unhandled
        exception."""
        from repro.api import protocol as protocol_module

        async def scenario():
            async with make_server() as server:
                client = await connect(server)
                await client.open("d1", "<a>{}</a>".format("x" * 400))
                monkeypatch.setattr(protocol_module, "MAX_FRAME", 256)
                with pytest.raises(ProtocolError):
                    await client.text("d1")
                # the connection survived and still answers
                assert (await client.docs()) == {"docs": ["d1"]}
                await client.aclose()
        run(scenario())

    def test_max_pipeline_must_be_positive(self):
        with DocumentStore(backend="serial") as store:
            with pytest.raises(ReproError):
                StoreServer(store, host="127.0.0.1", port=0,
                            max_pipeline=0)

    def test_queued_pipeline_finishes_before_close(self):
        async def scenario():
            async with make_server() as server:
                client = await connect(server, client="alice")
                await client.open("d1", DOC)
                futures = [asyncio.ensure_future(client.submit_xquery(
                    "d1", 'insert node <x/> as last into /bib/paper'))
                    for __ in range(6)]
                results = await asyncio.gather(*futures)
                assert len(results) == 6
                await client.aclose()
        run(scenario())
