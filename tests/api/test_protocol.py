"""The frame codec and message helpers of :mod:`repro.api.protocol`.

The property suite pins the decoder's safety contract: any byte
sequence — complete frames, frames cut at an arbitrary byte, garbage,
adversarial length headers — either decodes to exactly the frames that
are fully present or raises :class:`ProtocolError`; nothing else, and
never unbounded buffering.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import protocol
from repro.api.protocol import (
    HEADER_SIZE,
    MAX_FRAME,
    FrameDecoder,
    decode_payload,
    encode_frame,
)
from repro.errors import (
    ProtocolError,
    QueryEvaluationError,
    ReproError,
    UnknownNodeError,
)
from repro.pul.serialize import pul_from_xml, pul_to_xml

from tests.strategies import wire_puls

json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10)

#: frame payloads are always JSON objects
messages = st.dictionaries(st.text(max_size=8), json_values, max_size=5)


def chunked(data, cuts):
    """Split ``data`` at the (sorted, deduplicated) ``cuts`` offsets."""
    bounds = sorted({min(c, len(data)) for c in cuts})
    pieces = []
    start = 0
    for bound in bounds + [len(data)]:
        pieces.append(data[start:bound])
        start = bound
    return pieces


class TestRoundTrip:
    @given(st.lists(messages, max_size=6),
           st.lists(st.integers(0, 4096), max_size=8))
    def test_any_chunking_decodes_the_same_frames(self, objs, cuts):
        data = b"".join(encode_frame(obj) for obj in objs)
        decoder = FrameDecoder()
        decoded = []
        for piece in chunked(data, cuts):
            decoded.extend(decoder.feed(piece))
        assert decoded == objs
        assert decoder.at_boundary()

    @given(messages)
    def test_floats_and_unicode_survive(self, obj):
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(encode_frame(obj))
        assert decoded == obj

    @given(wire_puls())
    @settings(max_examples=25)
    def test_pul_exchange_documents_travel_intact(self, pul):
        """The realistic payload: a submit request carrying a PUL
        exchange document (wire escaping and all) frames and decodes
        back to the same PUL."""
        xml = pul_to_xml(pul)
        frame = encode_frame(protocol.request(7, "submit",
                                              {"doc_id": "d", "pul": xml}))
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(frame)
        __, op, args = protocol.parse_request(decoded)
        assert op == "submit"
        assert pul_to_xml(pul_from_xml(args["pul"])) == xml


class TestTornAndGarbage:
    @given(st.lists(messages, min_size=1, max_size=4),
           st.integers(0, 10_000))
    def test_torn_tail_yields_exactly_the_complete_prefix(self, objs,
                                                          cut):
        frames = [encode_frame(obj) for obj in objs]
        data = b"".join(frames)
        cut = min(cut, len(data))
        decoder = FrameDecoder()
        decoded = decoder.feed(data[:cut])
        # the frames fully contained in the prefix, nothing more
        complete = 0
        consumed = 0
        for frame in frames:
            if consumed + len(frame) <= cut:
                complete += 1
                consumed += len(frame)
            else:
                break
        assert decoded == objs[:complete]
        assert decoder.at_boundary() == (cut == consumed)

    @given(st.binary(max_size=200))
    def test_garbage_never_raises_anything_but_protocol_error(self,
                                                              data):
        decoder = FrameDecoder()
        try:
            decoder.feed(data)
        except ProtocolError:
            pass

    def test_oversized_length_header_fails_before_buffering(self):
        header = struct.pack(">I", MAX_FRAME + 1)
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(header)

    @pytest.mark.parametrize("length", [0, 1])
    def test_impossible_tiny_lengths_are_rejected(self, length):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(struct.pack(">I", length) + b"{}")

    def test_non_json_payload_is_a_protocol_error(self):
        data = struct.pack(">I", 3) + b"\xff\xfe\xfd"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(data)

    def test_non_object_payload_is_a_protocol_error(self):
        payload = json.dumps([1, 2]).encode()
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(struct.pack(">I", len(payload)) + payload)

    def test_oversized_outgoing_frame_is_refused(self):
        with pytest.raises(ProtocolError):
            encode_frame({"xml": "x" * (MAX_FRAME + 10)})

    def test_header_size_matches_the_spec(self):
        assert HEADER_SIZE == 4
        frame = encode_frame({})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == {}


class TestMessages:
    def test_parse_request_rejects_missing_and_typed_fields(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request({"id": 1})
        with pytest.raises(ProtocolError):
            protocol.parse_request({"op": 7})
        with pytest.raises(ProtocolError):
            protocol.parse_request({"op": "flush", "args": [1]})
        assert protocol.parse_request({"op": "docs"}) == (None, "docs", {})

    def test_response_roundtrip_ok(self):
        response = protocol.ok_response(3, {"x": 1})
        assert protocol.parse_response(response) == (3, {"x": 1})

    def test_error_response_reconstructs_the_subclass(self):
        response = protocol.error_response(9, UnknownNodeError(42))
        with pytest.raises(UnknownNodeError) as excinfo:
            protocol.parse_response(response)
        assert excinfo.value.code == "unknown-node"
        assert excinfo.value.node_id == 42

    def test_error_response_wraps_plain_exceptions(self):
        response = protocol.error_response(1, ValueError("boom"))
        with pytest.raises(ReproError) as excinfo:
            protocol.parse_response(response)
        assert excinfo.value.code == "repro"
        assert "boom" in str(excinfo.value)

    def test_negotiation_picks_newest_shared_version(self):
        assert protocol.negotiate_version([1]) == 1
        assert protocol.negotiate_version([1, 99]) == 1
        with pytest.raises(ProtocolError):
            protocol.negotiate_version([99])
        with pytest.raises(ProtocolError):
            protocol.negotiate_version("1")
        with pytest.raises(ProtocolError):
            protocol.negotiate_version([True])

    def test_hello_request_shape(self):
        hello = protocol.hello_request(1, client="alice")
        request_id, op, args = protocol.parse_request(hello)
        assert (request_id, op) == (1, "hello")
        assert args["client"] == "alice"
        assert args["versions"] == list(protocol.SUPPORTED_VERSIONS)


class TestErrorCodeTable:
    """Wire-level guarantees of the error-code satellite."""

    def test_every_code_reconstructs_its_class(self):
        from repro import errors as errors_module
        classes = [value for value in vars(errors_module).values()
                   if isinstance(value, type)
                   and issubclass(value, ReproError)]
        assert len(classes) >= 15
        codes = [klass.code for klass in classes]
        assert len(set(codes)) == len(codes), "codes must be unique"
        for klass in classes:
            rebuilt = ReproError.from_dict(
                {"code": klass.code, "message": "m"})
            assert type(rebuilt) is klass

    def test_unknown_code_degrades_to_the_base_class(self):
        rebuilt = ReproError.from_dict({"code": "from-the-future",
                                        "message": "m"})
        assert type(rebuilt) is ReproError

    def test_details_roundtrip(self):
        error = QueryEvaluationError("bad path")
        assert error.to_dict() == {"code": "query-evaluation",
                                   "message": "bad path"}
        from repro.errors import XMLSyntaxError
        error = XMLSyntaxError("unexpected <", position=12)
        payload = error.to_dict()
        assert payload["details"] == {"position": 12}
        rebuilt = ReproError.from_dict(payload)
        assert isinstance(rebuilt, XMLSyntaxError)
        assert rebuilt.position == 12
