"""Transport resilience satellites: stale Unix sockets, connect
retries with backoff, and the typed ``not-leader`` error on the wire."""

import asyncio
import os
import socket
import threading
import time

import pytest

from repro.api import AsyncStoreClient, StoreClient, StoreServer
from repro.cluster import ReplicaStore
from repro.errors import NotLeaderError, ProtocolError, ReproError
from repro.store import DocumentStore

DOC = "<bib><paper><title>T1</title></paper></bib>"


def run(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestStaleUnixSocket:
    def test_dead_socket_file_is_unlinked_on_bind(self, tmp_path):
        """Regression: a SIGKILLed server leaves its socket inode
        behind; the next bind used to fail with ``Address already in
        use``."""
        path = str(tmp_path / "store.sock")
        corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        corpse.bind(path)
        corpse.listen(1)
        # close WITHOUT unlinking: exactly what SIGKILL leaves behind
        corpse.close()
        assert os.path.exists(path)

        async def scenario():
            server = StoreServer(
                DocumentStore(workers=1, backend="serial"),
                unix_path=path)
            async with server:
                client = await AsyncStoreClient.connect(unix_path=path)
                await client.open("d1", DOC)
                assert (await client.docs()) == {"docs": ["d1"]}
                await client.aclose()
        run(scenario())

    def test_live_socket_is_not_stolen(self, tmp_path):
        path = str(tmp_path / "store.sock")

        async def scenario():
            first = StoreServer(
                DocumentStore(workers=1, backend="serial"),
                unix_path=path)
            async with first:
                second = StoreServer(
                    DocumentStore(workers=1, backend="serial"),
                    unix_path=path)
                with pytest.raises(OSError):
                    await second.start()
                second.store.close()
                # the original server kept its socket and still serves
                client = await AsyncStoreClient.connect(unix_path=path)
                assert (await client.docs()) == {"docs": []}
                await client.aclose()
        run(scenario())

    def test_a_plain_file_is_never_deleted(self, tmp_path):
        path = str(tmp_path / "store.sock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("precious")

        async def scenario():
            server = StoreServer(
                DocumentStore(workers=1, backend="serial"),
                unix_path=path)
            with pytest.raises(OSError):
                await server.start()
            server.store.close()
        run(scenario())
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "precious"


class TestConnectRetries:
    def _delayed_server(self, delay):
        """A listener that starts accepting only after ``delay``; the
        port is reserved up front so the first dials are refused."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = threading.Event()
        stop = threading.Event()

        def serve():
            time.sleep(delay)
            store = DocumentStore(workers=1, backend="serial")

            async def main():
                server = StoreServer(store, host="127.0.0.1", port=port)
                await server.start()
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.05)
                await server.aclose(drain=False)

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return port, started, stop, thread

    def test_blocking_connect_waits_out_a_bootstrap_race(self):
        port, started, stop, thread = self._delayed_server(0.4)
        try:
            with pytest.raises(ConnectionError):
                StoreClient.connect(host="127.0.0.1", port=port)
            with StoreClient.connect(host="127.0.0.1", port=port,
                                     retries=8, backoff=0.1) as client:
                assert client.protocol_version is not None
        finally:
            stop.set()
            thread.join(timeout=30)

    def test_async_connect_waits_out_a_bootstrap_race(self):
        port, started, stop, thread = self._delayed_server(0.4)
        try:
            async def scenario():
                with pytest.raises(ConnectionError):
                    await AsyncStoreClient.connect(host="127.0.0.1",
                                                   port=port)
                client = await AsyncStoreClient.connect(
                    host="127.0.0.1", port=port, retries=8, backoff=0.1)
                assert client.protocol_version is not None
                await client.aclose()
            run(scenario())
        finally:
            stop.set()
            thread.join(timeout=30)

    def test_exhausted_retries_reraise_the_refusal(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        start = time.monotonic()
        with pytest.raises(ConnectionError):
            StoreClient.connect(host="127.0.0.1", port=port,
                                retries=2, backoff=0.05)
        assert time.monotonic() - start >= 0.15   # 0.05 + 0.1 slept


class TestNotLeaderOnTheWire:
    def test_writes_answer_the_typed_redirect(self):
        async def scenario():
            replica = ReplicaStore(leader_address="10.0.0.9:4100",
                                   workers=1, backend="serial")
            async with StoreServer(replica, host="127.0.0.1",
                                   port=0) as server:
                host, port = server.tcp_address
                client = await AsyncStoreClient.connect(host=host,
                                                        port=port)
                with pytest.raises(NotLeaderError) as excinfo:
                    await client.open("d1", DOC)
                assert excinfo.value.code == "not-leader"
                assert excinfo.value.leader == "10.0.0.9:4100"
                with pytest.raises(NotLeaderError):
                    await client.flush("d1")
                # the connection survives and serves reads
                assert (await client.docs()) == {"docs": []}
                stats = await client.stats()
                assert stats["replication"]["role"] == "replica"
                assert stats["replication"]["leader"] == "10.0.0.9:4100"
                await client.aclose()
        run(scenario())

    def test_not_leader_round_trips_through_the_registry(self):
        error = NotLeaderError("10.1.2.3:9", operation="flush")
        payload = error.to_dict()
        assert payload["code"] == "not-leader"
        assert payload["details"]["leader"] == "10.1.2.3:9"
        rebuilt = ReproError.from_dict(payload)
        assert isinstance(rebuilt, NotLeaderError)
        assert rebuilt.leader == "10.1.2.3:9"
        assert "10.1.2.3:9" in str(rebuilt)

    def test_replication_ops_on_a_plain_store_are_typed(self):
        async def scenario():
            async with StoreServer(
                    DocumentStore(workers=1, backend="serial"),
                    host="127.0.0.1", port=0) as server:
                host, port = server.tcp_address
                client = await AsyncStoreClient.connect(host=host,
                                                        port=port)
                with pytest.raises(ReproError) as excinfo:
                    await client.replicate_subscribe(replica="r1")
                assert excinfo.value.code == "cluster"
                with pytest.raises(ReproError) as excinfo:
                    await client.wal_segment(0)
                assert excinfo.value.code == "cluster"
                with pytest.raises(ProtocolError):
                    await client._call("wal-segment")  # missing from_seq
                await client.aclose()
        run(scenario())
