"""The op/error registries as single source of truth: invariants,
generated-doc drift, and wire round-trips for the CDC/ETL codes."""

import pytest

from repro.api import docgen, ops, protocol
from repro.errors import (
    _CODE_REGISTRY,
    ImportAbortedError,
    ReproError,
    ResumeExpiredError,
    SubscriptionLaggedError,
)


class TestOpRegistry:
    def test_codes_are_dense_append_only_and_unique(self):
        codes = [spec.code for spec in ops.OPS]
        assert codes == list(range(len(ops.OPS)))
        assert len({spec.name for spec in ops.OPS}) == len(ops.OPS)

    def test_protocol_op_codes_come_from_the_registry(self):
        assert protocol.OP_CODES == ops.OP_CODES
        assert protocol.OP_NAMES == {code: name for name, code
                                     in ops.OP_CODES.items()}

    def test_cdc_ops_are_registered(self):
        assert ops.OP_CODES["subscribe"] == 16
        assert ops.OP_CODES["unsubscribe"] == 17
        assert ops.OP_CODES["bulk-import"] == 18
        assert ops.OP_CODES["export"] == 19

    def test_poll_ops_ride_the_follower_executor(self):
        # exactly the long-polling ops; a new parked op must opt in here
        assert ops.POLL_OPS == {"wal-segment", "subscribe"}

    def test_dispatch_table_covers_every_served_op(self):
        from repro.api.server import StoreServer

        table = ops.dispatch_table()
        assert set(table) == {spec.name for spec in ops.OPS
                              if spec.method is not None}
        assert "hello" not in table      # handled by negotiation
        assert StoreServer.DISPATCH == table

    def test_every_op_documents_its_result(self):
        for spec in ops.OPS:
            assert spec.result, spec.name


class TestErrorRegistry:
    def test_every_code_carries_generated_doc_text(self):
        for code, klass in _CODE_REGISTRY.items():
            assert getattr(klass, "wire_doc", ""), code

    def test_cdc_codes_are_registered(self):
        assert _CODE_REGISTRY["subscription-lagged"] \
            is SubscriptionLaggedError
        assert _CODE_REGISTRY["resume-expired"] is ResumeExpiredError
        assert _CODE_REGISTRY["import-aborted"] is ImportAbortedError

    @pytest.mark.parametrize("error,details", [
        (SubscriptionLaggedError(17, 42), {"first_seq": 42}),
        (ResumeExpiredError("old", "new"),
         {"token_stream": "old", "stream": "new"}),
        (ImportAbortedError(7, 3, 2), {"loaded": 7, "rejected": 3}),
    ])
    def test_cdc_errors_round_trip_with_details(self, error, details):
        payload = error.to_dict()
        assert payload["details"] == details
        rebuilt = ReproError.from_dict(payload)
        assert type(rebuilt) is type(error)
        assert str(rebuilt) == str(error)
        for attr, value in details.items():
            assert getattr(rebuilt, attr) == value

    def test_every_registry_code_round_trips_error_response(self):
        """``error_response`` → ``parse_response`` must reconstruct the
        exact class for every code the registry can emit."""
        for code, klass in _CODE_REGISTRY.items():
            payload = {"code": code, "message": "m", "details": {}}
            response = {"id": 1, "ok": False, "error": payload}
            with pytest.raises(klass) as info:
                protocol.parse_response(response)
            assert type(info.value) is klass, code


class TestGeneratedDocs:
    def test_readme_is_in_sync_with_the_registries(self):
        with open(docgen.README, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert docgen.apply(text) == text, \
            "api/README.md drifted — run `python -m repro.api.docgen`"

    def test_rendered_tables_cover_the_registries(self):
        op_table = docgen.render_op_codes()
        for spec in ops.OPS:
            assert "`{}`".format(spec.name) in op_table
        error_table = docgen.render_error_codes()
        for code in _CODE_REGISTRY:
            assert "`{}`".format(code) in error_table

    def test_missing_markers_fail_loudly(self):
        with pytest.raises(ValueError):
            docgen.apply("a README with no markers")

    def test_check_mode_detects_drift(self, tmp_path):
        path = tmp_path / "README.md"
        regions = "\n".join(
            "<!-- BEGIN GENERATED: {0} -->\nstale\n"
            "<!-- END GENERATED: {0} -->".format(name)
            for name in docgen.REGIONS)
        path.write_text(regions, encoding="utf-8")
        assert docgen.main(["--check", "--path", str(path)]) == 1
        assert docgen.main(["--path", str(path)]) == 0
        assert docgen.main(["--check", "--path", str(path)]) == 0
