"""The leader-side :class:`ReplicationSource`: numbering, backlog,
rotation survival, long-poll and capture consistency."""

import threading
import time

import pytest

from repro.errors import ClusterError, ProtocolError, ReplicationResetError
from repro.store import DocumentStore

DOC = "<doc><items/></doc>"


def make_leader(tmp_path, name="wal", backlog=None, durability="log",
                **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("backend", "serial")
    store = DocumentStore(durability=durability,
                          wal_dir=str(tmp_path / name), **kwargs)
    store.enable_replication(backlog=backlog)
    return store


def flush_insert(store, doc_id="d1", client="c1"):
    store.submit_xquery(doc_id, 'insert node <x/> as last into '
                                '/doc/items', client=client)
    store.flush(doc_id)


class TestNumbering:
    def test_records_are_numbered_from_the_source_anchor(self, tmp_path):
        with make_leader(tmp_path) as store:
            source = store.replication
            assert source.next_seq == 0
            store.open("d1", DOC)              # seq 0: open
            flush_insert(store)                # seq 1: batch
            flush_insert(store)                # seq 2: batch
            records, next_seq, end_seq = source.read_from(0)
            assert [r["record"]["kind"] for r in records] == \
                ["open", "batch", "batch"]
            assert [r["seq"] for r in records] == [0, 1, 2]
            assert next_seq == end_seq == 3

    def test_reads_are_incremental_and_bounded(self, tmp_path):
        with make_leader(tmp_path) as store:
            source = store.replication
            store.open("d1", DOC)
            for __ in range(4):
                flush_insert(store)
            first, cursor, __ = source.read_from(0, limit=2)
            assert [r["seq"] for r in first] == [0, 1] and cursor == 2
            rest, cursor, end = source.read_from(cursor, limit=100)
            assert [r["seq"] for r in rest] == [2, 3, 4]
            assert cursor == end == 5
            # caught up: an immediate read returns empty, not an error
            empty, cursor2, __ = source.read_from(cursor)
            assert empty == [] and cursor2 == cursor

    def test_future_seq_is_a_protocol_error(self, tmp_path):
        with make_leader(tmp_path) as store:
            with pytest.raises(ProtocolError):
                store.replication.read_from(7)
            with pytest.raises(ProtocolError):
                store.replication.read_from(-1)
            with pytest.raises(ProtocolError):
                store.replication.read_from(True)

    def test_history_before_the_source_is_not_streamed(self, tmp_path):
        """A source attached to a store with existing durable state
        anchors at the log end: old records are snapshot-transfer
        territory, never stream records."""
        wal_dir = str(tmp_path / "pre")
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=wal_dir) as store:
            store.open("d1", DOC)
            flush_insert(store)
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=wal_dir) as store:
            source = store.enable_replication()
            assert source.next_seq == 0
            flush_insert(store)
            records, __, __unused = source.read_from(0)
            assert [r["record"]["kind"] for r in records] == ["batch"]


class TestBacklog:
    def test_falling_behind_the_backlog_resets(self, tmp_path):
        with make_leader(tmp_path, backlog=3) as store:
            source = store.replication
            store.open("d1", DOC)
            for __ in range(5):
                flush_insert(store)
            # 6 records total, 3 retained: seq 0 is gone
            with pytest.raises(ReplicationResetError) as excinfo:
                source.read_from(0)
            assert excinfo.value.first_seq == source.first_seq > 0
            records, __, __unused = source.read_from(source.first_seq)
            assert len(records) == 3

    def test_backlog_must_be_positive(self, tmp_path):
        with pytest.raises(ClusterError):
            make_leader(tmp_path, backlog=0)

    def test_replication_requires_durability(self):
        with DocumentStore(workers=1, backend="serial") as store:
            with pytest.raises(ClusterError):
                store.enable_replication()


class TestRotation:
    def test_compaction_rotations_do_not_lose_feed_records(self,
                                                           tmp_path):
        """Snapshot compaction seals and *deletes* segments; the
        on_rotate drain must keep every record readable from the
        feed."""
        with make_leader(tmp_path, durability="log+snapshot:2") as store:
            source = store.replication
            store.open("d1", DOC)
            for __ in range(7):          # several compactions at N=2
                flush_insert(store)
            records, next_seq, __ = source.read_from(0)
            kinds = [r["record"]["kind"] for r in records]
            assert kinds.count("batch") == 7
            assert [r["seq"] for r in records] == list(range(next_seq))

    def test_manual_snapshot_mid_stream(self, tmp_path):
        with make_leader(tmp_path) as store:
            source = store.replication
            store.open("d1", DOC)
            flush_insert(store)
            cursor = source.read_from(0)[1]
            assert store.snapshot() is not None
            flush_insert(store)
            records, __, __unused = source.read_from(cursor)
            assert [r["record"]["kind"] for r in records] == ["batch"]


class TestLongPoll:
    def test_wait_returns_early_on_new_records(self, tmp_path):
        with make_leader(tmp_path) as store:
            source = store.replication
            store.open("d1", DOC)
            cursor = source.read_from(0)[1]

            def later():
                time.sleep(0.15)
                flush_insert(store)

            thread = threading.Thread(target=later)
            start = time.monotonic()
            thread.start()
            try:
                records, __, __unused = source.read_from(cursor,
                                                         wait_s=10.0)
            finally:
                thread.join()
            waited = time.monotonic() - start
            assert records and records[0]["record"]["kind"] == "batch"
            assert waited < 8.0   # returned on the wakeup, not timeout

    def test_wait_times_out_empty(self, tmp_path):
        with make_leader(tmp_path) as store:
            records, cursor, end = store.replication.read_from(
                0, wait_s=0.05)
            assert records == [] and cursor == end == 0


class TestCaptureAndStats:
    def test_capture_state_pairs_payloads_with_seq(self, tmp_path):
        with make_leader(tmp_path) as store:
            store.open("d1", DOC)
            flush_insert(store)
            payloads, seq = store.capture_state()
            assert [p["doc_id"] for p in payloads] == ["d1"]
            assert payloads[0]["version"] == 1
            assert seq == store.replication.next_seq == 2

    def test_subscriber_lag_in_stats(self, tmp_path):
        with make_leader(tmp_path) as store:
            source = store.replication
            store.open("d1", DOC)
            flush_insert(store)
            source.subscribe(replica="r1")
            source.read_from(1, replica="r1")
            stats = source.stats()
            assert stats["seq"] == 2
            assert stats["subscribers"]["r1"]["acked_seq"] == 1
            assert stats["subscribers"]["r1"]["lag"] == 1
            assert stats["wal"]["generation"] == 0
            assert stats["wal"]["offset"] > 0
            assert stats["stream"] == source.stream_id
