"""In-process cluster harness: StoreServers on their own threads.

Each node runs a real asyncio :class:`StoreServer` on a dedicated
thread and event loop, listening on an ephemeral localhost port — the
same isolation a separate process gives, minus the fork cost — so
cluster tests exercise genuine sockets, the real long-poll path and
real cross-thread wakeups.
"""

import asyncio
import threading

from repro.api.server import StoreServer


class ServerThread:
    """One cluster node: a store served on its own thread and loop."""

    def __init__(self, store, max_pipeline=32):
        self.store = store
        self._max_pipeline = max_pipeline
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.address = None        # "host:port" once running
        self.error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:      # noqa: BLE001 — re-raised
            self.error = exc
        finally:
            self._ready.set()

    async def _main(self):
        server = StoreServer(self.store, host="127.0.0.1", port=0,
                             max_pipeline=self._max_pipeline)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.address = "{}:{}".format(*server.tcp_address)
        self._ready.set()
        await self._stop.wait()
        await server.aclose(drain=False)

    def start(self):
        self._thread.start()
        self._ready.wait()
        if self.error is not None:
            self._thread.join()
            raise self.error
        return self

    def stop(self):
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        self._thread.join(timeout=60)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
