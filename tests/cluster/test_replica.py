""":class:`ReplicaStore`: bootstrap, streamed apply, read-only
enforcement, durable restart, and promotion."""

import pytest

from repro.cluster import ReplicaStore
from repro.errors import ClusterError, NotLeaderError
from repro.store import DocumentStore, replay_oracle

DOC = "<doc><items/><meta><owner>o</owner></meta></doc>"
LEADER_ADDR = "127.0.0.1:7000"


def make_leader(tmp_path, name="leader-wal", **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("backend", "serial")
    store = DocumentStore(durability="log",
                          wal_dir=str(tmp_path / name), **kwargs)
    store.enable_replication()
    return store


def make_replica(tmp_path=None, name="replica-wal", **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("backend", "serial")
    kwargs.setdefault("leader_address", LEADER_ADDR)
    if tmp_path is not None:
        kwargs.setdefault("durability", "log")
        kwargs.setdefault("wal_dir", str(tmp_path / name))
    return ReplicaStore(**kwargs)


def pump(leader, replica, limit=500):
    """Ship everything the replica has not applied yet."""
    records, next_seq, __ = leader.replication.read_from(
        replica.applied_seq, limit=limit)
    replica.apply_records(records, next_seq)
    return records


def bootstrap(leader, replica):
    payloads, seq = leader.capture_state()
    replica.bootstrap(payloads, seq,
                      stream=leader.replication.stream_id)


def writes(leader, doc_id="d1", rounds=3, client="c1"):
    for index in range(rounds):
        leader.submit_xquery(
            doc_id, 'insert node <x n="{}"/> as last into '
                    '/doc/items'.format(index), client=client)
        leader.flush(doc_id)


class TestStreaming:
    def test_bootstrap_then_stream_matches_leader(self, tmp_path):
        with make_leader(tmp_path) as leader, make_replica() as replica:
            leader.open("d1", DOC)
            writes(leader, rounds=2)
            bootstrap(leader, replica)
            assert replica.text("d1") == leader.text("d1")
            writes(leader, rounds=3)
            leader.submit_xquery(
                "d1", 'rename node /doc/meta/owner as "keeper"',
                client="c2")
            leader.flush("d1")
            pump(leader, replica)
            assert replica.text("d1") == leader.text("d1")
            assert replica.version("d1") == leader.version("d1") == 6
            assert replica.applied_seq == leader.replication.next_seq

    def test_replica_state_equals_leader_replay(self, tmp_path):
        """Invariant 8: replica state ≡ what the leader's own WAL
        replays to (the stateless oracle over the leader's directory),
        byte for byte."""
        with make_leader(tmp_path) as leader, make_replica() as replica:
            leader.open("d1", DOC)
            leader.open("d2", "<doc><items/></doc>")
            bootstrap(leader, replica)
            writes(leader, "d1", rounds=3)
            writes(leader, "d2", rounds=2, client="c9")
            pump(leader, replica)
            oracle = replay_oracle(leader._durability.directory)
            for doc_id in ("d1", "d2"):
                text, version = oracle[doc_id]
                assert replica.text(doc_id) == text
                assert replica.version(doc_id) == version

    def test_open_close_and_relabel_records_stream(self, tmp_path):
        with make_leader(tmp_path, max_code_length=2) as leader, \
                make_replica(max_code_length=2) as replica:
            bootstrap(leader, replica)
            leader.open("d1", DOC)
            # max_code_length=2 forces full relabels through the
            # headroom rule; the stream must reproduce them
            writes(leader, rounds=4)
            leader.open("d2", "<doc><items/></doc>")
            leader.close_document("d2")
            records = pump(leader, replica)
            kinds = {r["record"]["kind"] for r in records}
            assert {"open", "batch", "close"} <= kinds
            assert replica.text("d1") == leader.text("d1")
            assert "d2" not in replica
            assert replica.stats("d1")["full_relabels"] == \
                leader.stats("d1")["full_relabels"] > 0

    def test_redelivery_is_idempotent_and_gaps_raise(self, tmp_path):
        with make_leader(tmp_path) as leader, make_replica() as replica:
            leader.open("d1", DOC)
            writes(leader, rounds=2)
            bootstrap(leader, replica)
            writes(leader, rounds=1)
            records, next_seq, __ = leader.replication.read_from(
                replica.applied_seq)
            replica.apply_records(records, next_seq)
            before = replica.text("d1")
            # the exact same segment again: a no-op
            replica.apply_records(records, next_seq)
            assert replica.text("d1") == before
            assert replica.applied_seq == next_seq
            # a gap is a stream bug, never silently applied
            writes(leader, rounds=2)
            gapped, gapped_next, __ = leader.replication.read_from(
                replica.applied_seq + 1)
            with pytest.raises(ClusterError):
                replica.apply_records(gapped, gapped_next)

    def test_failed_leader_batch_is_skipped_identically(self, tmp_path):
        """Two clients renaming one node is an incompatible union: the
        leader's flush fails *after* the write-ahead append. The
        streamed record must fail on the replica the same way and leave
        its state tracking the leader."""
        with make_leader(tmp_path) as leader, make_replica() as replica:
            leader.open("d1", DOC)
            bootstrap(leader, replica)
            leader.submit_xquery(
                "d1", 'rename node /doc/meta/owner as "a"', client="c1")
            leader.submit_xquery(
                "d1", 'rename node /doc/meta/owner as "b"', client="c2")
            with pytest.raises(Exception):
                leader.flush("d1")
            leader.discard_pending("d1")
            writes(leader, rounds=1)
            pump(leader, replica)
            assert replica.text("d1") == leader.text("d1")
            assert replica.version("d1") == leader.version("d1") == 1


class TestReadOnly:
    def test_every_write_bounces_with_the_leader_address(self, tmp_path):
        with make_leader(tmp_path) as leader, make_replica() as replica:
            leader.open("d1", DOC)
            bootstrap(leader, replica)
            pump(leader, replica)
            calls = [
                lambda: replica.open("d2", DOC),
                lambda: replica.submit_xquery(
                    "d1", 'delete nodes /doc/items'),
                lambda: replica.flush("d1"),
                lambda: replica.flush_all(),
                lambda: replica.discard_pending("d1"),
                lambda: replica.close_document("d1"),
            ]
            for call in calls:
                with pytest.raises(NotLeaderError) as excinfo:
                    call()
                assert excinfo.value.code == "not-leader"
                assert excinfo.value.leader == LEADER_ADDR

    def test_reads_are_served_locally(self, tmp_path):
        with make_leader(tmp_path) as leader, make_replica() as replica:
            leader.open("d1", DOC)
            writes(leader, rounds=2)
            bootstrap(leader, replica)
            assert replica.doc_ids() == ["d1"]
            assert replica.stats("d1")["version"] == 2
            result = replica.query("d1", "/doc/items/x")
            assert result["count"] == 2
            assert result["nodes"] == ['<x n="0"/>', '<x n="1"/>']


class TestDurableReplica:
    def test_restart_recovers_state_and_cursor(self, tmp_path):
        with make_leader(tmp_path) as leader:
            leader.open("d1", DOC)
            writes(leader, rounds=2)
            replica = make_replica(tmp_path)
            bootstrap(leader, replica)
            writes(leader, rounds=2)
            pump(leader, replica)
            expected = replica.text("d1")
            seq = replica.applied_seq
            stream = replica.stream_id
            replica.close()

            reopened = make_replica(tmp_path)
            try:
                assert reopened.applied_seq == seq
                assert reopened.stream_id == stream
                assert reopened.text("d1") == expected
                # and the stream resumes in place: no reset needed
                writes(leader, rounds=1)
                pump(leader, reopened)
                assert reopened.text("d1") == leader.text("d1")
            finally:
                reopened.close()

    def test_crash_before_cursor_redelivery_never_wedges(self, tmp_path):
        """Regression: a crash between applying a streamed ``open`` and
        writing the ``repl-pos`` cursor makes the leader re-ship the
        record. The redelivered open must be a no-op — not a
        "log opens twice" error — and must not write a duplicate open
        into the replica's own WAL (which would poison its next
        restart)."""
        with make_leader(tmp_path) as leader:
            replica = make_replica(tmp_path)
            bootstrap(leader, replica)
            leader.open("d1", DOC)
            writes(leader, rounds=1)
            leader.open("d2", "<doc><items/></doc>")
            leader.close_document("d2")
            records, next_seq, __ = leader.replication.read_from(
                replica.applied_seq)
            replica.apply_records(records, next_seq)
            expected = replica.text("d1")
            # simulate the lost cursor: the state was applied but the
            # repl-pos record never reached the replica's WAL
            replica.applied_seq = next_seq - len(records)
            replica.apply_records(records, next_seq)   # redelivery
            assert replica.text("d1") == expected
            assert replica.applied_seq == next_seq
            replica.close()
            # and the replica's own WAL still recovers (no duplicate
            # opens poisoning replay)
            reopened = make_replica(tmp_path)
            try:
                assert reopened.text("d1") == expected
                assert "d2" not in reopened
                writes(leader, rounds=1)
                pump(leader, reopened)
                assert reopened.text("d1") == leader.text("d1")
            finally:
                reopened.close()

    def test_rebootstrap_replaces_the_old_timeline(self, tmp_path):
        """After a reset (new leader epoch), the replica's own WAL must
        recover to the *new* state, not a blend of both."""
        with make_leader(tmp_path, name="wal-a") as first:
            first.open("d1", DOC)
            writes(first, rounds=1)
            replica = make_replica(tmp_path)
            bootstrap(first, replica)
            pump(first, replica)
        with make_leader(tmp_path, name="wal-b") as second:
            second.open("d1", "<doc><items/><fresh/></doc>")
            writes(second, rounds=2)
            bootstrap(second, replica)
            pump(second, replica)
            expected = replica.text("d1")
            assert "<fresh/>" in expected
            replica.close()
            reopened = make_replica(tmp_path)
            try:
                assert reopened.text("d1") == expected
                assert reopened.stream_id == second.replication.stream_id
            finally:
                reopened.close()


class TestPromote:
    def test_promote_accepts_writes_and_feeds_followers(self, tmp_path):
        with make_leader(tmp_path) as leader:
            leader.open("d1", DOC)
            writes(leader, rounds=2)
            replica = make_replica(tmp_path)
            bootstrap(leader, replica)
            pump(leader, replica)
        result = replica.promote()
        assert result == {"role": "leader", "promoted": True,
                          "applied_seq": replica.applied_seq}
        assert replica.promote()["promoted"] is False   # idempotent
        try:
            # writes now land
            replica.submit_xquery(
                "d1", 'insert node <post/> as last into /doc/items',
                client="c1")
            replica.flush("d1")
            assert "<post/>" in replica.text("d1")
            # and a follower of the promoted node bootstraps cleanly
            follower = make_replica(leader_address="promoted:0")
            try:
                payloads, seq = replica.capture_state()
                follower.bootstrap(payloads, seq,
                                   stream=replica.replication.stream_id)
                writes(replica, rounds=1)
                pump(replica, follower)
                assert follower.text("d1") == replica.text("d1")
            finally:
                follower.close()
        finally:
            replica.close()

    def test_promoting_a_non_durable_replica_needs_force(self, tmp_path):
        """A WAL-less replica makes a leader that cannot keep the
        failover guarantees; promote refuses unless explicitly
        forced (the last-resort salvage path)."""
        with make_leader(tmp_path) as leader, make_replica() as replica:
            leader.open("d1", DOC)
            bootstrap(leader, replica)
            with pytest.raises(ClusterError):
                replica.promote()
            assert replica.role == "replica"
            result = replica.promote(allow_non_durable=True)
            assert result["promoted"] and replica.role == "leader"
            replica.submit_xquery(
                "d1", 'insert node <salvaged/> as last into /doc/items',
                client="c1")
            replica.flush("d1")
            assert "<salvaged/>" in replica.text("d1")

    def test_promoting_a_plain_store_is_refused(self, tmp_path):
        from repro.api.dispatch import StoreDispatcher

        with DocumentStore(workers=1, backend="serial") as store:
            with pytest.raises(ClusterError):
                StoreDispatcher(store).promote()
