"""The 3-node acceptance path, real processes end to end.

``repro cluster serve`` spawns a leader and two replicas (one durable,
one memory-only); concurrent clients drive writes through the leader;
the replicas catch up; the leader is SIGKILLed — no drain, no
goodbye — and a replica is promoted with the CLI. Every acknowledged
batch must survive: the promoted node and the remaining replica serve
document text byte-identical to a :class:`StatelessBaseline` oracle fed
exactly the acknowledged submissions, and the promoted node accepts
new writes routed through :class:`ClusterClient`'s failover discovery.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

from repro.api.client import AsyncStoreClient, StoreClient
from repro.cluster import ClusterClient, parse_address
from repro.store import StatelessBaseline
from repro.xquery import compile_pul

CLIENTS = 4
ROUNDS = 3

SHARED_DOC = "<shared>{}</shared>".format(
    "".join("<s{0}>v</s{0}>".format(i) for i in range(CLIENTS)))


def client_doc(index):
    return ("<doc><items/><meta><owner>c{}</owner></meta></doc>"
            .format(index))


def insert_expr(round_index):
    return ('insert node <item r="{}"/> as last into /doc/items'
            .format(round_index))


def spawn_node(env, extra):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster", "serve",
         "--listen", "127.0.0.1:0", "--backend", "thread",
         "--poll-wait", "0.5"] + extra,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    banner = process.stdout.readline().strip()
    assert banner.startswith("listening tcp "), banner
    address = banner.split()[-1]
    assert process.stdout.readline().startswith("role ")
    return process, address


def node_stats(address, **connect_kwargs):
    host, port = parse_address(address)
    with StoreClient.connect(host=host, port=port,
                             **connect_kwargs) as client:
        return client.stats()


def wait_for_catchup(addresses, leader_seq, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        applied = [
            (node_stats(address).get("replication") or {})
            .get("applied_seq") for address in addresses]
        if all(value == leader_seq for value in applied):
            return True
        time.sleep(0.2)
    return False


def test_leader_sigkill_promote_preserves_every_acked_batch(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    leader_wal = str(tmp_path / "leader-wal")
    replica_wal = str(tmp_path / "replica-wal")
    processes = []
    try:
        leader, leader_addr = spawn_node(
            env, ["--role", "leader", "--wal-dir", leader_wal,
                  "--durability", "log"])
        processes.append(leader)
        durable_replica, durable_addr = spawn_node(
            env, ["--role", "replica", "--leader", leader_addr,
                  "--replica-id", "r-durable",
                  "--wal-dir", replica_wal, "--durability", "log"])
        processes.append(durable_replica)
        memory_replica, memory_addr = spawn_node(
            env, ["--role", "replica", "--leader", leader_addr,
                  "--replica-id", "r-memory"])
        processes.append(memory_replica)

        host, port = parse_address(leader_addr)

        async def client_session(index):
            client = await AsyncStoreClient.connect(
                host=host, port=port, client="c{}".format(index),
                retries=3)
            doc_id = "d{}".format(index)
            await client.open(doc_id, client_doc(index))
            for round_index in range(ROUNDS):
                await client.submit_xquery(doc_id,
                                           insert_expr(round_index))
                flushed = await client.flush(doc_id)
                assert flushed["version"] == round_index + 1
            await client.submit_xquery(
                "shared",
                'rename node /shared/s{0} as "t{0}"'.format(index))
            await client.aclose()

        async def drive():
            opener = await AsyncStoreClient.connect(
                host=host, port=port, client="opener", retries=3)
            await opener.open("shared", SHARED_DOC)
            await asyncio.gather(*[client_session(index)
                                   for index in range(CLIENTS)])
            flushed = await opener.flush("shared")
            assert flushed["clients"] == CLIENTS
            await opener.aclose()

        asyncio.run(asyncio.wait_for(drive(), 120))

        # every write above was acknowledged; catch the replicas up to
        # the leader's stream end (the manual-failover runbook: fence
        # writes, wait for lag zero, only then fail over)
        leader_seq = node_stats(leader_addr)["replication"]["seq"]
        assert wait_for_catchup([durable_addr, memory_addr], leader_seq)

        # no drain, no goodbye
        leader.send_signal(signal.SIGKILL)
        leader.wait(timeout=30)

        promote = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster", "promote",
             "--node", durable_addr],
            env=env, capture_output=True, text=True, timeout=120)
        assert promote.returncode == 0, promote.stderr
        assert "now leader" in promote.stdout

        # the oracle: exactly the acknowledged submissions
        baseline = StatelessBaseline(measure_parse=False)
        for index in range(CLIENTS):
            doc_id = "d{}".format(index)
            baseline.open(doc_id, client_doc(index))
            for round_index in range(ROUNDS):
                baseline.submit(doc_id, compile_pul(
                    insert_expr(round_index),
                    baseline.document(doc_id)),
                    client="c{}".format(index))
                baseline.flush(doc_id)
        baseline.open("shared", SHARED_DOC)
        for index in range(CLIENTS):
            baseline.submit("shared", compile_pul(
                'rename node /shared/s{0} as "t{0}"'.format(index),
                baseline.document("shared")),
                client="c{}".format(index))
        baseline.flush("shared")

        all_docs = ["d{}".format(index) for index in range(CLIENTS)] \
            + ["shared"]

        def texts(address):
            host_, port_ = parse_address(address)
            with StoreClient.connect(host=host_, port=port_,
                                     retries=2) as client:
                return {doc_id: client.text(doc_id)["text"]
                        for doc_id in all_docs}

        promoted_texts = texts(durable_addr)
        remaining_texts = texts(memory_addr)
        for doc_id in all_docs:
            expected = baseline.text(doc_id)
            assert promoted_texts[doc_id] == expected, doc_id
            assert remaining_texts[doc_id] == expected, doc_id

        # the router discovers the promoted leader through the shard's
        # replica list and lands new writes there
        with ClusterClient(
                [{"leader": leader_addr,
                  "replicas": [durable_addr, memory_addr]}],
                client="post-failover") as router:
            router.submit_xquery(
                "d0", 'insert node <post-failover/> as last into /doc')
            flushed = router.flush("d0")
            assert flushed["flushed"]
            assert "<post-failover/>" in texts(durable_addr)["d0"]

        stats = node_stats(durable_addr)["replication"]
        assert stats["role"] == "leader"

        # clean shutdown of the survivors
        for process in (durable_replica, memory_replica):
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
    finally:
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
