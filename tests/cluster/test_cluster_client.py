"""The consistent-hash router and the live sync loop over real
sockets (in-process :class:`StoreServer` nodes)."""

import time

import pytest

from repro.cluster import ClusterClient, HashRing, ReplicaStore, ReplicaSync
from repro.errors import ClusterError, NotLeaderError, ReproError
from repro.store import DocumentStore
from tests.cluster.harness import ServerThread

DOC = "<doc><items/></doc>"


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def make_leader_store(tmp_path, name):
    store = DocumentStore(workers=1, backend="serial", durability="log",
                          wal_dir=str(tmp_path / name))
    store.enable_replication()
    return store


class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(["a", "b", "c"])
        again = HashRing(["a", "b", "c"])
        keys = ["doc-{}".format(index) for index in range(200)]
        assert [ring.lookup(k) for k in keys] == \
            [again.lookup(k) for k in keys]
        owners = {ring.lookup(k) for k in keys}
        assert owners == {"a", "b", "c"}   # every shard takes load

    def test_adding_a_shard_moves_only_its_arcs(self):
        before = HashRing(["a", "b", "c"])
        after = HashRing(["a", "b", "c", "d"])
        keys = ["doc-{}".format(index) for index in range(400)]
        moved = sum(1 for k in keys
                    if before.lookup(k) != after.lookup(k))
        gained = sum(1 for k in keys if after.lookup(k) == "d")
        assert moved == gained            # nothing reshuffles elsewhere
        assert 0 < gained < len(keys) / 2  # roughly 1/4, never a rehash

    def test_rejects_empty_and_duplicate_shards(self):
        with pytest.raises(ClusterError):
            HashRing([])
        with pytest.raises(ClusterError):
            HashRing(["a", "a"])


class TestRouting:
    def test_writes_partition_across_two_leader_shards(self, tmp_path):
        with ServerThread(make_leader_store(tmp_path, "s0")) as node0, \
                ServerThread(make_leader_store(tmp_path, "s1")) as node1:
            with ClusterClient([node0.address, node1.address],
                               client="router") as client:
                doc_ids = ["doc-{}".format(i) for i in range(12)]
                for doc_id in doc_ids:
                    client.open(doc_id, DOC)
                    client.submit_xquery(
                        doc_id,
                        'insert node <w/> as last into /doc/items')
                    client.flush(doc_id)
                # every document lives exactly on the shard the ring
                # names, and the union read sees them all
                assert client.docs()["docs"] == sorted(doc_ids)
                by_shard = {node0.address: node0.store.doc_ids(),
                            node1.address: node1.store.doc_ids()}
                for doc_id in doc_ids:
                    owner = client.shard_of(doc_id)
                    assert doc_id in by_shard[owner]
                    assert "<w/>" in client.text(doc_id)["text"]
                assert all(by_shard.values())   # both shards got load
                stats = client.stats()
                assert len(stats["stats"]) == len(doc_ids)

    def test_not_leader_redirect_updates_the_shard_table(self, tmp_path):
        """Point the router at the replica; the typed redirect must
        land the write on the real leader and rewrite the table."""
        leader_store = make_leader_store(tmp_path, "leader")
        with ServerThread(leader_store) as leader_node:
            replica = ReplicaStore(leader_address=leader_node.address,
                                   workers=1, backend="serial")
            with ServerThread(replica) as replica_node:
                sync = ReplicaSync(replica, leader_node.address, "r1",
                                   wait_s=0.2).start()
                try:
                    with ClusterClient(
                            [{"leader": replica_node.address,
                              "replicas": [replica_node.address]}],
                            client="router") as client:
                        client.open("d1", DOC)
                        shard = client._shards[client.ring.names[0]]
                        assert shard.leader == leader_node.address
                        client.submit_xquery(
                            "d1",
                            'insert node <via-redirect/> as last into '
                            '/doc/items')
                        flushed = client.flush("d1")
                        assert flushed["flushed"]
                        assert "<via-redirect/>" in \
                            leader_store.text("d1")
                finally:
                    sync.stop()

    def test_reads_fan_out_to_replicas_and_survive_leader_loss(
            self, tmp_path):
        leader_store = make_leader_store(tmp_path, "leader")
        leader_node = ServerThread(leader_store).start()
        replica = ReplicaStore(leader_address=leader_node.address,
                               workers=1, backend="serial")
        sync = ReplicaSync(replica, leader_node.address, "r1",
                           wait_s=0.2).start()
        with ServerThread(replica) as replica_node:
            try:
                with ClusterClient(
                        [{"leader": leader_node.address,
                          "replicas": [replica_node.address]}],
                        client="router") as client:
                    client.open("d1", DOC)
                    client.submit_xquery(
                        "d1", 'insert node <r/> as last into /doc/items')
                    client.flush("d1")
                    leader_seq = leader_store.replication.next_seq
                    assert wait_until(
                        lambda: replica.applied_seq == leader_seq)
                    assert client.text("d1")["text"] == \
                        leader_store.text("d1")
                    assert client.query("d1", "/doc/items/r")["count"] \
                        == 1
                    # the leader goes away: replica reads still answer
                    leader_node.stop()
                    assert client.text("d1")["text"] == \
                        replica.text("d1")
                    # a write has no reachable leader anywhere: typed
                    # failure, naming the shard
                    with pytest.raises((ClusterError, NotLeaderError)):
                        client.submit_xquery(
                            "d1",
                            'insert node <nope/> as last into '
                            '/doc/items')
            finally:
                sync.stop()

    def test_read_errors_propagate_from_replicas(self, tmp_path):
        """A command failure from a replica is the answer (fan-out only
        routes around *dead* nodes)."""
        leader_store = make_leader_store(tmp_path, "leader")
        with ServerThread(leader_store) as leader_node:
            replica = ReplicaStore(leader_address=leader_node.address,
                                   workers=1, backend="serial")
            with ServerThread(replica) as replica_node:
                sync = ReplicaSync(replica, leader_node.address, "r1",
                                   wait_s=0.2).start()
                try:
                    with ClusterClient(
                            [{"leader": leader_node.address,
                              "replicas": [replica_node.address]}],
                            client="router") as client:
                        with pytest.raises(ReproError):
                            client.text("ghost")
                finally:
                    sync.stop()


class TestSyncLoop:
    def test_sync_bootstraps_streams_and_reports_status(self, tmp_path):
        leader_store = make_leader_store(tmp_path, "leader")
        with ServerThread(leader_store) as leader_node:
            leader_store.open("d1", DOC)
            replica = ReplicaStore(leader_address=leader_node.address,
                                   workers=1, backend="serial",
                                   durability="log",
                                   wal_dir=str(tmp_path / "replica"))
            sync = ReplicaSync(replica, leader_node.address, "r1",
                               wait_s=0.2).start()
            try:
                for index in range(3):
                    leader_store.submit_xquery(
                        "d1", 'insert node <x n="{}"/> as last into '
                              '/doc/items'.format(index), client="c1")
                    leader_store.flush("d1")
                leader_seq = leader_store.replication.next_seq
                assert wait_until(
                    lambda: replica.applied_seq == leader_seq)
                assert replica.text("d1") == leader_store.text("d1")
                # "behind" fills in with the first wal-segment answer
                # (a bootstrap alone can already satisfy catch-up)
                assert wait_until(
                    lambda: sync.status()["behind"] == 0)
                assert sync.status()["connected"]
                # the leader sees the subscriber's acked position
                assert wait_until(
                    lambda: leader_store.replication.stats()
                    ["subscribers"].get("r1", {}).get("lag") == 0)
            finally:
                sync.stop()
            assert sync.stopped

    def test_sync_rebootstraps_after_backlog_reset(self, tmp_path):
        leader_store = DocumentStore(workers=1, backend="serial",
                                     durability="log",
                                     wal_dir=str(tmp_path / "leader"))
        leader_store.enable_replication(backlog=2)
        with ServerThread(leader_store) as leader_node:
            leader_store.open("d1", DOC)
            replica = ReplicaStore(leader_address=leader_node.address,
                                   workers=1, backend="serial")
            sync = ReplicaSync(replica, leader_node.address, "r1",
                               wait_s=0.2).start()
            try:
                assert wait_until(lambda: "d1" in replica)
                # stop the pull, let the leader outrun the backlog
                sync.stop()
                for index in range(6):
                    leader_store.submit_xquery(
                        "d1", 'insert node <y n="{}"/> as last into '
                              '/doc/items'.format(index), client="c1")
                    leader_store.flush("d1")
                sync2 = ReplicaSync(replica, leader_node.address, "r1",
                                    wait_s=0.2).start()
                try:
                    leader_seq = leader_store.replication.next_seq
                    assert wait_until(
                        lambda: replica.applied_seq == leader_seq)
                    assert replica.text("d1") == leader_store.text("d1")
                finally:
                    sync2.stop()
            finally:
                sync.stop()

    def test_sync_survives_leader_restart_with_new_epoch(self, tmp_path):
        """A leader that dies and comes back renumbers its stream; the
        epoch check must force a re-bootstrap, never a silent splice."""
        wal = str(tmp_path / "leader")
        leader_store = DocumentStore(workers=1, backend="serial",
                                     durability="log", wal_dir=wal)
        leader_store.enable_replication()
        leader_node = ServerThread(leader_store).start()
        address = leader_node.address
        leader_store.open("d1", DOC)
        replica = ReplicaStore(leader_address=address, workers=1,
                               backend="serial")
        sync = ReplicaSync(replica, address, "r1", wait_s=0.2,
                           backoff=0.05).start()
        try:
            assert wait_until(lambda: "d1" in replica)
            old_stream = replica.stream_id
            leader_node.stop()
            # reincarnate on a fresh port with the same durable state
            restarted = DocumentStore(workers=1, backend="serial",
                                      durability="log", wal_dir=wal)
            restarted.enable_replication()
            with ServerThread(restarted) as reborn:
                sync.leader = reborn.address
                restarted.submit_xquery(
                    "d1", 'insert node <again/> as last into '
                          '/doc/items', client="c1")
                restarted.flush("d1")
                leader_seq = restarted.replication.next_seq
                assert wait_until(
                    lambda: replica.applied_seq == leader_seq
                    and replica.stream_id != old_stream)
                assert replica.text("d1") == restarted.text("d1")
        finally:
            sync.stop()
