"""The ``repro cluster`` command group, in-process via ``main()``."""

import io

from repro.cli import main
from repro.cluster import ReplicaStore, ReplicaSync
from repro.store import DocumentStore
from tests.cluster.harness import ServerThread

DOC = "<doc><items/></doc>"


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_serve_argument_validation():
    code, __ = run(["cluster", "serve", "--role", "leader",
                    "--listen", "127.0.0.1:0"])
    assert code == 2          # a leader must ship a WAL
    code, __ = run(["cluster", "serve", "--role", "replica",
                    "--listen", "127.0.0.1:0"])
    assert code == 2          # a replica must name its leader
    code, __ = run(["cluster", "serve", "--role", "leader",
                    "--listen", "nonsense", "--wal-dir", "ignored"])
    assert code == 2          # bad listen spec


def test_status_and_promote_against_live_nodes(tmp_path):
    leader_store = DocumentStore(workers=1, backend="serial",
                                 durability="log",
                                 wal_dir=str(tmp_path / "wal"))
    leader_store.enable_replication()
    with ServerThread(leader_store) as leader_node:
        leader_store.open("d1", DOC)
        replica = ReplicaStore(leader_address=leader_node.address,
                               workers=1, backend="serial",
                               durability="log",
                               wal_dir=str(tmp_path / "replica-wal"))
        with ServerThread(replica) as replica_node:
            sync = ReplicaSync(replica, leader_node.address, "r1",
                               wait_s=0.2).start()
            try:
                code, output = run(
                    ["cluster", "status", leader_node.address,
                     replica_node.address])
                assert code == 0
                assert "leader seq=" in output
                assert "replica of {}".format(leader_node.address) \
                    in output

                code, output = run(["cluster", "promote", "--node",
                                    replica_node.address])
                assert code == 0
                assert "now leader" in output
                assert replica.role == "leader"

                # promoted node reports as leader; promote again is
                # idempotent and says so
                code, output = run(["cluster", "status",
                                    replica_node.address])
                assert code == 0 and "leader seq=" in output
                code, output = run(["cluster", "promote", "--node",
                                    replica_node.address])
                assert code == 0 and "already promoted" in output
            finally:
                sync.stop()


def test_status_reports_unreachable_nodes():
    code, output = run(["cluster", "status", "127.0.0.1:1",
                        "--retries", "0"])
    assert code == 1
    assert "unreachable" in output
