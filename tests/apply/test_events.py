"""Tests for the SAX-like event model."""

import pytest
from hypothesis import given, settings

from repro.errors import XMLSyntaxError
from repro.apply.events import (
    EndElement,
    StartElement,
    TextEvent,
    document_events,
    events_to_document,
    events_to_xml,
    parse_events,
)
from repro.xdm import parse_document, serialize
from repro.xdm.compare import documents_equal

from tests.strategies import documents


class TestParseEvents:
    def test_ids_match_tree_parser(self, small_doc):
        text = serialize(small_doc)
        streamed = list(parse_events(text))
        walked = list(document_events(small_doc))
        assert len(streamed) == len(walked)
        for a, b in zip(streamed, walked):
            assert type(a) is type(b)
            assert a.node_id == b.node_id
            if isinstance(a, StartElement):
                assert [x.node_id for x in a.attributes] == \
                    [x.node_id for x in b.attributes]

    def test_end_element_carries_id(self):
        events = list(parse_events("<a><b/></a>"))
        ends = [e for e in events if isinstance(e, EndElement)]
        assert [e.node_id for e in ends] == [1, 0]

    def test_self_closing(self):
        events = list(parse_events("<a/>"))
        assert [type(e).__name__ for e in events] == \
            ["StartElement", "EndElement"]
        assert events[1].node_id == 0

    def test_text_and_entities(self):
        events = list(parse_events("<a>x &amp; y</a>"))
        text = next(e for e in events if isinstance(e, TextEvent))
        assert text.value == "x & y"

    def test_comments_and_cdata(self):
        events = list(parse_events("<a><!--c--><![CDATA[<x>]]></a>"))
        text = next(e for e in events if isinstance(e, TextEvent))
        assert text.value == "<x>"

    def test_malformed(self):
        with pytest.raises(XMLSyntaxError):
            list(parse_events("<a><b></a></b>"))

    def test_whitespace_handling_matches_tree_parser(self):
        text = "<a>\n  <b/>\n</a>"
        streamed = [type(e).__name__ for e in parse_events(text)]
        assert "TextEvent" not in streamed
        kept = [type(e).__name__
                for e in parse_events(text, keep_whitespace=True)]
        assert "TextEvent" in kept


class TestWriter:
    def test_roundtrip(self, small_doc):
        text = serialize(small_doc)
        assert events_to_xml(parse_events(text)) == text

    def test_with_ids(self, small_doc):
        text = events_to_xml(document_events(small_doc), with_ids=True)
        assert 'repro:id="0"' in text

    def test_with_labels(self, small_doc):
        text = events_to_xml(document_events(small_doc),
                             labels={0: "LBL"})
        assert 'repro:label="LBL"' in text

    def test_escaping(self):
        doc = parse_document('<a k="&quot;">&lt;</a>')
        assert events_to_xml(document_events(doc)) == serialize(doc)

    @settings(max_examples=40, deadline=None)
    @given(documents())
    def test_random_roundtrip(self, document):
        text = serialize(document)
        assert events_to_xml(parse_events(text, keep_whitespace=True)) == \
            text


class TestFileSink:
    def test_events_to_file_matches_string_writer(self, small_doc,
                                                  tmp_path):
        import io
        from repro.apply.events import events_to_file
        buffer = io.StringIO()
        written = events_to_file(document_events(small_doc), buffer,
                                 flush_every=2)
        text = events_to_xml(document_events(small_doc))
        assert buffer.getvalue() == text
        assert written == len(text)


class TestMaterialize:
    def test_events_to_document(self, small_doc):
        rebuilt = events_to_document(document_events(small_doc))
        assert documents_equal(rebuilt, small_doc, with_ids=True)

    def test_empty_stream(self):
        document = events_to_document(iter(()))
        assert document.root is None
