"""Streaming evaluator tests: byte-equivalence with the in-memory
evaluator, identifier assignment, label maintenance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apply.events import (
    document_events,
    events_to_document,
    events_to_xml,
    parse_events,
)
from repro.apply.inmemory import apply_in_memory
from repro.apply.streaming import apply_streaming
from repro.errors import NotApplicableError
from repro.labeling import ContainmentLabeling
from repro.labeling import predicates as P
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.xdm import parse_document, serialize
from repro.xdm.navigation import (
    is_ancestor,
    is_left_sibling,
    is_parent,
)
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest

from tests.strategies import applicable_puls, documents


def both_ways(xml, pul):
    """Run both evaluators; assert identical output; return it."""
    document = parse_document(xml)
    in_memory = apply_in_memory(parse_document(xml), pul, with_ids=True)
    streamed = events_to_xml(
        apply_streaming(parse_events(xml), pul,
                        fresh_start=len(document)),
        with_ids=True)
    assert in_memory == streamed
    return streamed


class TestEquivalenceWithInMemory:
    def test_inserts_everywhere(self):
        xml = "<a><b>x</b><c/></a>"
        pul = PUL([
            InsertBefore(1, parse_forest("<p1/>")),
            InsertBefore(1, parse_forest("<p2/>")),
            InsertAfter(1, parse_forest("<q1/>")),
            InsertAfter(1, parse_forest("<q2/>")),
            InsertIntoAsFirst(0, parse_forest("<f/>")),
            InsertIntoAsLast(0, parse_forest("<l/>")),
            InsertInto(0, parse_forest("<i/>")),
        ])
        out = both_ways(xml, pul)
        assert out.index("<f") < out.index("<i") < out.index("<p1")

    def test_replacements(self):
        xml = "<a k='v'><b>x</b><c/>tail</a>"
        pul = PUL([
            ReplaceNode(2, parse_forest("<nb/>")),
            ReplaceValue(1, "v2"),
            ReplaceChildren(4, "emptied"),
            Rename(0, "root"),
        ])
        both_ways(xml, pul)

    def test_deletions(self):
        xml = "<a k='v'><b>x</b><c/>t</a>"
        both_ways(xml, PUL([Delete(2), Delete(1), Delete(5)]))

    def test_text_node_operations(self):
        xml = "<a>first<b/>second</a>"
        pul = PUL([
            ReplaceValue(1, "FIRST"),
            ReplaceNode(3, parse_forest("<s/>")),
            InsertBefore(1, parse_forest("<pre/>")),
            InsertAfter(3, parse_forest("<post/>")),
        ])
        both_ways(xml, pul)

    def test_attribute_operations(self):
        xml = "<a k1='1' k2='2'><b/></a>"
        pul = PUL([
            Rename(1, "renamed"),
            ReplaceValue(2, "changed"),
            InsertAttributes(0, [Node.attribute("k3", "3")]),
            InsertAttributes(3, [Node.attribute("n", "m")]),
        ])
        both_ways(xml, pul)

    def test_replace_attribute_node(self):
        xml = "<a k='v'/>"
        both_ways(xml, PUL([ReplaceNode(
            1, [Node.attribute("k2", "w")])]))

    def test_repc_cases(self):
        xml = "<a k='v'><b><c/>x</b></a>"
        pul = PUL([ReplaceChildren(2, "gone"),
                   InsertIntoAsLast(2, parse_forest("<dead/>")),
                   InsertAttributes(2, [Node.attribute("kept", "1")])])
        out = both_ways(xml, pul)
        assert "dead" not in out and "kept" in out

    def test_nested_override(self):
        xml = "<a><b><c><d/></c></b></a>"
        pul = PUL([Rename(3, "dead"),
                   ReplaceNode(1, parse_forest("<nb><x/></nb>"))])
        out = both_ways(xml, pul)
        assert "dead" not in out

    def test_root_delete(self):
        xml = "<a><b/></a>"
        document = parse_document(xml)
        streamed = events_to_xml(apply_streaming(
            parse_events(xml), PUL([Delete(0)]), fresh_start=2))
        assert streamed == ""
        assert apply_in_memory(document, PUL([Delete(0)])) == ""

    def test_renamed_element_end_tag(self):
        out = both_ways("<a><b>x</b></a>", PUL([Rename(1, "nb")]))
        assert "</nb>" in out

    def test_duplicate_attribute_error(self):
        xml = "<a k='v'/>"
        pul = PUL([InsertAttributes(0, [Node.attribute("k", "w")])])
        with pytest.raises(NotApplicableError):
            events_to_xml(apply_streaming(parse_events(xml), pul))

    def test_producer_ids_preserved(self):
        xml = "<a><b/></a>"
        tree = Node.element("p", node_id=50)
        pul = PUL([InsertAfter(1, [tree])])
        out = events_to_document(apply_streaming(
            parse_events(xml), pul, fresh_start=100))
        assert out.find(50) is not None

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_puls_agree(self, data):
        document = data.draw(documents())
        pul = data.draw(applicable_puls(document, max_ops=6))
        xml = serialize(document)
        try:
            in_memory = apply_in_memory(parse_document(xml), pul,
                                        with_ids=True)
        except NotApplicableError:
            return
        streamed = events_to_xml(
            apply_streaming(parse_events(xml), pul,
                            fresh_start=len(document)),
            with_ids=True)
        assert in_memory == streamed


class TestLabelMaintenance:
    def _run(self, xml, pul):
        document = parse_document(xml)
        labeling = ContainmentLabeling().build(document)
        events = apply_streaming(parse_events(xml), pul,
                                 fresh_start=len(document),
                                 labeling=labeling)
        return events_to_document(events), labeling

    def _check(self, output, labeling):
        nodes = {n.node_id: n for n in output.nodes()}
        for node in nodes.values():
            assert labeling.find(node.node_id) is not None, node
        for a in nodes.values():
            la = labeling.find(a.node_id)
            for b in nodes.values():
                if a is b:
                    continue
                lb = labeling.find(b.node_id)
                assert P.is_descendant(la, lb) == is_ancestor(b, a), (a, b)
                assert P.is_child(la, lb) == is_parent(b, a), (a, b)
                assert P.is_left_sibling(la, lb) == \
                    is_left_sibling(a, b), (a, b)

    def test_mixed_update_labels(self):
        xml = "<a k='v'><b>x</b><c/><d/></a>"
        pul = PUL([
            InsertBefore(4, parse_forest("<w1/>")),
            InsertAfter(4, parse_forest("<w2/>")),
            Delete(5),
            ReplaceNode(2, parse_forest("<nb><deep/></nb>")),
            InsertAttributes(0, [Node.attribute("k2", "2")]),
            InsertIntoAsLast(4, parse_forest("<in>t</in>")),
        ])
        output, labeling = self._run(xml, pul)
        self._check(output, labeling)

    def test_original_codes_untouched(self):
        xml = "<a><b/><c/></a>"
        document = parse_document(xml)
        labeling = ContainmentLabeling().build(document)
        before = {nid: (lab.start, lab.end)
                  for nid, lab in labeling.as_mapping().items()}
        pul = PUL([InsertAfter(1, parse_forest("<m/>"))])
        list(apply_streaming(parse_events(xml), pul, fresh_start=3,
                             labeling=labeling))
        for node_id, codes in before.items():
            label = labeling.find(node_id)
            assert (label.start, label.end) == codes

    def test_removed_labels_forgotten(self):
        xml = "<a><b><c/></b></a>"
        __, labeling = self._run(xml, PUL([Delete(1)]))
        assert labeling.find(1) is None
        assert labeling.find(2) is None

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_label_consistency(self, data):
        document = data.draw(documents(max_depth=2, max_children=2))
        pul = data.draw(applicable_puls(document, max_ops=4))
        xml = serialize(document)
        labeling = ContainmentLabeling().build(parse_document(xml))
        try:
            events = apply_streaming(parse_events(xml), pul,
                                     fresh_start=len(document),
                                     labeling=labeling)
            output = events_to_document(events)
        except NotApplicableError:
            return
        if output.root is None:
            return
        self._check(output, labeling)
