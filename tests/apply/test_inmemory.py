"""Tests for the in-memory evaluator wrapper."""

from repro.apply.inmemory import InMemoryEvaluator, apply_in_memory
from repro.labeling import ContainmentLabeling
from repro.pul.ops import Delete, InsertIntoAsLast, Rename
from repro.pul.pul import PUL
from repro.xdm import parse_document
from repro.xdm.parser import parse_forest


class TestInMemory:
    def test_from_text(self):
        out = apply_in_memory("<a><b/></a>", PUL([Rename(1, "nb")]))
        assert out == "<a><nb/></a>"

    def test_from_document_updates_in_place(self, small_doc):
        apply_in_memory(small_doc, PUL([Delete(2)]))
        assert 2 not in small_doc

    def test_labeling_synced(self):
        document = parse_document("<a><b/></a>")
        labeling = ContainmentLabeling().build(document)
        evaluator = InMemoryEvaluator(labeling=labeling)
        evaluator.evaluate(document, PUL([
            InsertIntoAsLast(0, parse_forest("<n/>"))]))
        new_id = document.root.children[-1].node_id
        assert labeling.find(new_id) is not None

    def test_emit_labels(self):
        document = parse_document("<a><b/></a>")
        labeling = ContainmentLabeling().build(document)
        out = apply_in_memory(document, PUL([Rename(1, "nb")]),
                              labeling=labeling, emit_labels=True)
        assert "repro:label=" in out

    def test_root_delete_yields_empty(self):
        assert apply_in_memory("<a/>", PUL([Delete(0)])) == ""
