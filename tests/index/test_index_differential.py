"""Differential fuzz harness for the index subsystem.

Random documents take random PUL batches through the resident store
(incremental index maintenance) while random path queries run through
all three engines. The properties pinned after **every** flush:

* **engine identity** — ``walk``, ``auto`` and ``index`` return the
  same serialized nodes, and all three equal the walker run over the
  :class:`StatelessBaseline`'s independently maintained tree;
* **index = rebuild** — the published version's maintained index
  equals :func:`build_index` run from scratch on that version, also
  across full-relabel fallbacks (a tight headroom budget is drawn in
  some examples to force them mid-session);
* **recovery parity** — a store recovered from the WAL serves the same
  bytes for every query as the leader that wrote it (the restore-time
  index rebuild meets the leader's incrementally maintained one).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.index import build_index
from repro.store import DocumentStore, StatelessBaseline
from repro.workloads import generate_client_batches, generate_xmark
from repro.xdm.serializer import serialize, serialize_node
from repro.xquery import parse_path
from repro.xquery.xpath import evaluate_path

from tests.strategies import applicable_puls, documents

#: the strategies.py document alphabet, plus the names PULs introduce
_STEP_NAMES = ("a", "b", "c", "d", "e", "rn1", "rn2")
_ATTR_NAMES = ("k0", "k1", "g1")
_PREDICATES = ('[@k0 = "x"]', '[@k1 = "y"]', '[@g1 = "w"]',
               "[a]", "[b]", "[text()]",
               "[1]", "[2]", "[last()]")


@st.composite
def path_queries(draw):
    """A parseable path over the random-document alphabet: child and
    descendant axes, name/wildcard/attribute/text tests, and a mix of
    exists/compare/positional predicates."""
    parts = []
    length = draw(st.integers(1, 3))
    for position in range(length):
        axis = draw(st.sampled_from(("/", "//")))
        kind = draw(st.sampled_from(
            ("name", "name", "name", "wild", "attr", "text")))
        if kind == "name":
            step = draw(st.sampled_from(_STEP_NAMES))
            if draw(st.booleans()):
                step += draw(st.sampled_from(_PREDICATES))
        elif kind == "wild":
            step = "*"
        elif kind == "attr":
            step = "@" + draw(st.sampled_from(_ATTR_NAMES))
        else:
            step = "text()"
        parts.append(axis + step)
    return "".join(parts)


def assert_engines_agree(store, baseline, queries):
    """One checkpoint of the differential property (docstring above)."""
    for query in queries:
        walk = store.query("d", query, engine="walk")
        auto = store.query("d", query, explain=True)
        forced = store.query("d", query, engine="index")
        oracle = [serialize_node(node) for node in evaluate_path(
            parse_path(query), document=baseline.document("d"))]
        assert walk["nodes"] == auto["nodes"] == forced["nodes"] \
            == oracle
        assert auto["count"] == len(oracle)


def assert_index_is_rebuild(store):
    version = store._entries["d"].published
    assert version.index == build_index(version.document,
                                        version.labeling)


class TestEngineDifferential:
    @settings(deadline=None, max_examples=40)
    @given(data=st.data())
    def test_indexed_equals_walker_equals_baseline(self, data):
        document = data.draw(documents(), label="document")
        text = serialize(document)
        headroom = data.draw(st.sampled_from((64, 64, 10)),
                             label="max_code_length")
        baseline = StatelessBaseline(measure_parse=False)
        with DocumentStore(workers=1, backend="serial",
                           max_code_length=headroom) as store:
            store.open("d", text)
            baseline.open("d", text)
            queries = data.draw(
                st.lists(path_queries(), min_size=1, max_size=4),
                label="queries")
            assert_engines_agree(store, baseline, queries)
            for round_index in range(data.draw(st.integers(1, 3),
                                               label="rounds")):
                resident = store._entries["d"].published.document
                pul = data.draw(
                    applicable_puls(resident, max_ops=5,
                                    stamp_ids=True),
                    label="round {} pul".format(round_index))
                if not len(pul):
                    continue
                store.submit("d", pul.copy(), client="c")
                baseline.submit("d", pul.copy(), client="c")
                outcomes = []
                for executor in (store, baseline):
                    try:
                        executor.flush("d")
                        outcomes.append("applied")
                    except ReproError:
                        # e.g. a duplicate attribute name across
                        # rounds — a dynamic error both sides must
                        # reject identically, leaving state untouched
                        executor.discard_pending("d")
                        outcomes.append("rejected")
                assert outcomes[0] == outcomes[1]
                assert store.text("d") == baseline.text("d")
                assert_index_is_rebuild(store)
                assert_engines_agree(store, baseline, queries)

    @settings(deadline=None, max_examples=25)
    @given(queries=st.lists(path_queries(), min_size=1, max_size=5))
    def test_agreement_across_forced_relabel_fallbacks(self, queries):
        """A hot-spot session under a tight headroom budget: the store
        crosses full-relabel (and index-rebuild) boundaries while the
        three engines keep agreeing on every query."""
        from repro.pul.ops import InsertIntoAsFirst
        from repro.pul.pul import PUL
        from repro.xdm import parse_document
        from repro.xdm.node import Node

        text = "<a><b><c>t</c></b></a>"
        hot_spot = next(n.node_id
                        for n in parse_document(text).nodes()
                        if n.is_element and n.name == "b")
        serial = 1000
        baseline = StatelessBaseline(measure_parse=False)
        with DocumentStore(workers=1, backend="serial",
                           max_code_length=8) as store:
            store.open("d", text)
            baseline.open("d", text)
            rebuilds = 0
            for __ in range(5):
                tree = Node.element("b")
                tree.append_attribute(Node.attribute("k0", "x"))
                tree.append_child(Node.text("w"))
                for node in tree.iter_subtree():
                    node.node_id = serial
                    serial += 1
                pul = PUL([InsertIntoAsFirst(hot_spot, [tree])])
                for executor in (store, baseline):
                    executor.submit("d", pul.copy(), client="c")
                result = store.flush("d")
                baseline.flush("d")
                rebuilds += result.index_maintenance == "rebuild"
                assert store.text("d") == baseline.text("d")
                assert_index_is_rebuild(store)
                assert_engines_agree(store, baseline, queries)
            assert rebuilds >= 1  # the budget actually forced fallbacks


class TestRecoveryParity:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_recovered_store_serves_identical_queries(self, tmp_path,
                                                      seed):
        document = generate_xmark(scale=0.02, seed=7)
        batches, __ = generate_client_batches(
            document, clients=2, rounds=3, ops_per_round=8, seed=seed)
        queries = ("//item", "//item/name", "//@id",
                   "/site//keyword", "//text/text()")
        wal_dir = str(tmp_path / "wal")
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=wal_dir) as store:
            store.open("d", serialize(document))
            for submissions in batches:
                for client, pul in submissions:
                    store.submit("d", pul.copy(), client=client)
                store.flush("d")
            assert_index_is_rebuild(store)
            leader = {q: store.query("d", q) for q in queries}
            leader_index = store._entries["d"].published.index
            expected = store.text("d")
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=wal_dir) as twin:
            assert twin.text("d") == expected
            # restore builds from scratch; the leader maintained
            # incrementally — same index either way
            assert twin._entries["d"].published.index == leader_index
            for query in queries:
                served = twin.query("d", query, engine="index")
                assert served["nodes"] == leader[query]["nodes"]
