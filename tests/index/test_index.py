"""Unit coverage of the secondary index subsystem.

Three layers, bottom-up: :class:`DocumentIndex` construction and
copy-on-write incremental maintenance (``derive`` against the reduced
PUL of a flush), the interval primitives of :mod:`repro.index.engine`,
and the planner/store integration — every engine returns the walker's
bytes, published versions carry an index equal to a from-scratch
rebuild, and ``explain`` travels through the dispatcher without nodes.
"""

import pytest

from repro.api.dispatch import StoreDispatcher
from repro.apply.inplace import apply_batch_in_place
from repro.index import DocumentIndex, build_index
from repro.index.engine import descendant_sweep, value_filter_ids
from repro.index.planner import run_query
from repro.labeling import ContainmentLabeling
from repro.pul.ops import (
    Delete,
    InsertAttributes,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.reasoning import DocumentOracle
from repro.reduction import reduce_deterministic
from repro.store import DocumentStore
from repro.xdm import parse_document
from repro.xdm.document import Document
from repro.xdm.node import Node
from repro.xquery import parse_path

DOC = ("<doc>"
       "<paper id='p1' status='ok'><title>Alpha One</title>"
       "<authors><author>A</author><author>B</author></authors></paper>"
       "<paper id='p2' status='retracted'><title>Beta</title></paper>"
       "<note>n</note>"
       "</doc>")


def fresh():
    document = parse_document(DOC)
    labeling = ContainmentLabeling().build(document)
    return document, labeling


def by_name(document, name):
    return [n for n in document.nodes()
            if n.is_element and n.name == name]


class TestBuild:
    def test_buckets_cover_every_node_sorted_by_start(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        assert index.entry_count() == len(document)
        for bucket in index.elements.values():
            assert bucket == sorted(bucket)
        assert sorted(index.elements) == \
            ["author", "authors", "doc", "note", "paper", "title"]
        assert len(index.elements["paper"]) == 2
        assert len(index.attributes["id"]) == 2
        assert [e for e in index.values[("status", "ok")]] == \
            index.values[("status", "ok")]
        assert len(index.values[("status", "retracted")]) == 1
        assert len(index.texts) == 5

    def test_entries_carry_label_codes_and_parent_ids(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        (entry,) = index.elements["note"]
        label = labeling.label_of(entry[2])
        assert (entry[0], entry[1]) == (label.start, label.end)
        assert entry[3] == document.root.node_id

    def test_rootless_document_indexes_empty(self):
        index = build_index(Document(), ContainmentLabeling())
        assert index.entry_count() == 0
        assert index.stats()["entries"] == 0

    def test_token_index_is_opt_in(self):
        document, labeling = fresh()
        plain = build_index(document, labeling)
        assert plain.tokens is None
        tokened = build_index(document, labeling, text_tokens=True)
        assert sorted(tokened.tokens) == ["A", "Alpha", "B", "Beta",
                                          "One", "n"]
        assert len(tokened.tokens["Alpha"]) == 1

    def test_equality_is_structural(self):
        document, labeling = fresh()
        assert build_index(document, labeling) == \
            build_index(document, labeling)
        other = parse_document("<doc/>")
        assert build_index(document, labeling) != \
            build_index(other, ContainmentLabeling().build(other))


def derive_after(ops):
    """Apply ``ops`` in place (the store's flush path) and return
    ``(derived_index, rebuilt_index, old_index, new_document)``."""
    old_document, old_labeling = fresh()
    index = build_index(old_document, old_labeling)
    working = old_document.copy()
    labeling = old_labeling.copy()
    reduced = reduce_deterministic(
        PUL(ops), structure=DocumentOracle(old_document))
    mode = apply_batch_in_place(working, labeling, reduced)
    assert mode == "incremental"
    derived = index.derive(old_document, working, labeling, reduced)
    return derived, build_index(working, labeling), index, working


class TestDerive:
    def test_delete_matches_rebuild_and_drops_empty_buckets(self):
        document, __ = fresh()
        (note,) = by_name(document, "note")
        derived, rebuilt, __, __ = derive_after([Delete(note.node_id)])
        assert derived == rebuilt
        assert "note" not in derived.elements

    def test_insert_subtree_matches_rebuild(self):
        document, __ = fresh()
        (authors,) = by_name(document, "authors")
        tree = Node.element("author")
        tree.append_child(Node.text("C"))
        derived, rebuilt, __, __ = derive_after(
            [InsertIntoAsLast(authors.node_id, [tree])])
        assert derived == rebuilt
        assert len(derived.elements["author"]) == 3

    def test_insert_attributes_updates_value_buckets(self):
        document, __ = fresh()
        (note,) = by_name(document, "note")
        derived, rebuilt, __, __ = derive_after(
            [InsertAttributes(note.node_id,
                              [Node.attribute("status", "ok")])])
        assert derived == rebuilt
        assert len(derived.values[("status", "ok")]) == 2

    def test_rename_moves_the_element_bucket(self):
        document, __ = fresh()
        (note,) = by_name(document, "note")
        derived, rebuilt, __, __ = derive_after(
            [Rename(note.node_id, "remark")])
        assert derived == rebuilt
        assert "note" not in derived.elements
        assert len(derived.elements["remark"]) == 1

    def test_replace_value_moves_the_value_bucket(self):
        document, __ = fresh()
        status = next(n for n in document.nodes() if n.is_attribute
                      and n.name == "status" and n.value == "ok")
        derived, rebuilt, __, __ = derive_after(
            [ReplaceValue(status.node_id, "rev")])
        assert derived == rebuilt
        assert ("status", "ok") not in derived.values
        assert len(derived.values[("status", "rev")]) == 1

    def test_replace_node_swaps_subtrees(self):
        document, __ = fresh()
        papers = by_name(document, "paper")
        derived, rebuilt, __, __ = derive_after(
            [ReplaceNode(papers[1].node_id, [Node.element("errata")])])
        assert derived == rebuilt
        assert len(derived.elements["paper"]) == 1
        assert "errata" in derived.elements

    def test_replace_children_clears_the_old_subtree(self):
        document, __ = fresh()
        papers = by_name(document, "paper")
        derived, rebuilt, __, __ = derive_after(
            [ReplaceChildren(papers[0].node_id, [Node.text("gone")])])
        assert derived == rebuilt
        assert len(derived.elements["title"]) == 1  # paper 2's survives

    def test_untouched_buckets_are_shared_not_copied(self):
        document, __ = fresh()
        (note,) = by_name(document, "note")
        derived, __, old, __ = derive_after(
            [Rename(note.node_id, "remark")])
        assert derived.elements["paper"] is old.elements["paper"]
        assert derived.attributes["id"] is old.attributes["id"]
        assert derived.texts is not None

    def test_rename_with_token_index_shares_token_buckets(self):
        old_document, old_labeling = fresh()
        index = build_index(old_document, old_labeling,
                            text_tokens=True)
        (note,) = by_name(old_document, "note")
        working = old_document.copy()
        labeling = old_labeling.copy()
        reduced = reduce_deterministic(
            PUL([Rename(note.node_id, "remark")]),
            structure=DocumentOracle(old_document))
        apply_batch_in_place(working, labeling, reduced)
        derived = index.derive(old_document, working, labeling, reduced)
        assert derived == build_index(working, labeling,
                                      text_tokens=True)
        assert derived.tokens["Alpha"] is index.tokens["Alpha"]


class TestSweep:
    def test_strict_containment(self):
        intervals = [("1", "4"), ("6", "9")]
        entries = [("0", "05", 1, None),   # before both
                   ("2", "3", 2, None),    # inside the first
                   ("1", "4", 3, None),    # equal, not strict
                   ("5", "55", 4, None),   # in the gap
                   ("7", "8", 5, None)]    # inside the second
        kept = descendant_sweep(intervals, entries)
        assert [e[2] for e in kept] == [2, 5]

    def test_virtual_root_contains_everything(self):
        entries = [("1", "2", 1, None), ("3", "9", 2, None)]
        assert descendant_sweep([("", None)], entries) == entries

    def test_key_projection(self):
        entries = [("2", "2a", 7, "owner")]
        kept = descendant_sweep([("1", "4")], entries,
                                key=lambda e: ("2", "3"))
        assert kept == entries


class TestValueFilter:
    def test_attribute_literal_shape_hits_the_value_bucket(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        path = parse_path('/doc/paper[@status = "ok"]')
        (predicate,) = path.steps[1].predicates
        ids = value_filter_ids(predicate, index)
        papers = by_name(document, "paper")
        assert ids == {papers[0].node_id}

    def test_other_shapes_fall_back_to_the_walker(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        for text in ('/doc/paper[title = "Alpha"]',   # element compare
                     '/doc/paper[authors]'):          # exists
            (predicate,) = parse_path(text).steps[1].predicates
            assert value_filter_ids(predicate, index) is None


QUERIES = (
    "/doc", "/doc/paper", "//author", "//@id", "//paper//author",
    "//title/text()", "/doc/*", "//paper/@status",
    '/doc/paper[@status = "ok"]/title', "//paper[authors]",
    "/doc/paper[2]", "//author[last()]",
)


class TestPlanner:
    @pytest.mark.parametrize("text", QUERIES)
    def test_every_engine_returns_walker_nodes(self, text):
        document, labeling = fresh()
        index = build_index(document, labeling)
        path = parse_path(text)
        walked, __ = run_query(path, document, labeling=labeling,
                               index=index, engine="walk")
        for engine in ("auto", "index"):
            nodes, __ = run_query(path, document, labeling=labeling,
                                  index=index, engine=engine)
            assert nodes == walked

    def test_positional_predicates_route_to_the_walker(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        __, plan = run_query(parse_path("/doc/paper[2]"), document,
                             labeling=labeling, index=index)
        assert plan["mode"] == "walker"
        assert "positional" in plan["reason"]

    def test_wildcard_step_yields_a_mixed_plan(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        __, plan = run_query(parse_path("/doc/*"), document,
                             labeling=labeling, index=index,
                             engine="index")
        choices = [s["choice"] for s in plan["steps"]]
        assert choices == ["index-scan", "walk"]
        assert plan["mode"] == "mixed"

    def test_forced_index_mode_scans_buckets(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        __, plan = run_query(parse_path("//paper//author"), document,
                             labeling=labeling, index=index,
                             engine="index")
        assert plan["mode"] == "indexed"
        assert all(s["choice"] == "index-scan" for s in plan["steps"])

    def test_missing_index_walks_with_a_reason(self):
        document, labeling = fresh()
        __, plan = run_query(parse_path("//author"), document,
                             labeling=labeling, index=None)
        assert plan["mode"] == "walker"
        assert plan["reason"] == "no index for this version"

    def test_unknown_engine_is_refused(self):
        document, labeling = fresh()
        with pytest.raises(ValueError):
            run_query(parse_path("/doc"), document, labeling=labeling,
                      index=build_index(document, labeling),
                      engine="turbo")

    def test_attr_value_predicate_uses_the_value_bucket(self):
        document, labeling = fresh()
        index = build_index(document, labeling)
        __, plan = run_query(
            parse_path('/doc/paper[@status = "ok"]'), document,
            labeling=labeling, index=index, engine="index")
        assert plan["steps"][1]["predicates"] == ["attr-value-index"]


class TestStoreIntegration:
    def test_flush_maintains_the_index_incrementally(self):
        with DocumentStore(workers=1, backend="serial") as store:
            store.open("d", DOC)
            store.submit_xquery(
                "d", 'insert node <note>fresh</note> as last into /doc')
            result = store.flush("d")
            assert result.index_maintenance == "incremental"
            version = store._entries["d"].published
            assert version.index == build_index(version.document,
                                                version.labeling)

    def test_tight_headroom_falls_back_to_rebuild(self):
        with DocumentStore(workers=1, backend="serial",
                           max_code_length=6) as store:
            store.open("d", DOC)
            modes = set()
            for __ in range(6):
                store.submit_xquery(
                    "d",
                    'insert node <x/> as first into /doc/paper[1]')
                modes.add(store.flush("d").index_maintenance)
                version = store._entries["d"].published
                assert version.index == build_index(version.document,
                                                    version.labeling)
            assert "rebuild" in modes

    def test_pinned_versions_keep_their_index(self):
        with DocumentStore(workers=1, backend="serial") as store:
            store.open("d", DOC)
            before = store._entries["d"].published
            snapshot = before.index.as_dict()
            store.submit_xquery("d", 'delete nodes /doc/note')
            store.flush("d")
            after = store._entries["d"].published
            assert before.index.as_dict() == snapshot
            assert "note" in before.index.elements
            assert "note" not in after.index.elements
            # untouched buckets are shared across the version boundary
            assert after.index.elements["author"] is \
                before.index.elements["author"]

    def test_query_engines_are_byte_identical(self):
        with DocumentStore(workers=1, backend="serial") as store:
            store.open("d", DOC)
            for text in QUERIES:
                walk = store.query("d", text, engine="walk")
                auto = store.query("d", text)
                forced = store.query("d", text, engine="index")
                assert walk["nodes"] == auto["nodes"] == forced["nodes"]

    def test_query_explain_attaches_the_plan(self):
        with DocumentStore(workers=1, backend="serial") as store:
            store.open("d", DOC)
            plain = store.query("d", "//author")
            assert "plan" not in plain
            explained = store.query("d", "//author", explain=True)
            assert explained["plan"]["mode"] == "indexed"
            assert explained["nodes"] == plain["nodes"]

    def test_explain_surface_omits_the_nodes(self):
        dispatcher = StoreDispatcher()
        with dispatcher.store as store:
            store.open("d", DOC)
            result = dispatcher.explain("d", "//paper//author")
            assert result["count"] == 2
            assert "nodes" not in result
            assert [s["choice"] for s in result["plan"]["steps"]] == \
                ["index-scan", "index-scan"]

    def test_explain_requires_text(self):
        from repro.errors import ProtocolError
        dispatcher = StoreDispatcher()
        with dispatcher.store as store:
            store.open("d", DOC)
            with pytest.raises(ProtocolError):
                dispatcher.explain("d", 42)
