"""Shared fixtures: reference documents and small helpers."""

import pytest

from repro.labeling import ContainmentLabeling
from repro.reasoning import DocumentOracle
from repro.xdm import parse_document
from repro.xdm.parser import parse_forest


#: a SigmodRecord-like fragment mirroring Figure 1 of the paper
FIGURE1_XML = (
    "<SigmodRecord>"
    "<issue>"
    "<volume>11</volume>"
    "<number>1</number>"
    "<articles>"
    "<article>"
    "<title>Limitations of Record Access</title>"
    "<initPage>18</initPage>"
    "<endPage>0</endPage>"
    "<authors><author position='00'>Paula Hawthorn</author></authors>"
    "</article>"
    "<article>"
    "<title>A Model of Data Distribution</title>"
    "<authors>"
    "<author position='00'>Marco M.</author>"
    "<author position='01'>Giovanna G.</author>"
    "</authors>"
    "</article>"
    "</articles>"
    "</issue>"
    "</SigmodRecord>"
)


@pytest.fixture
def figure1():
    """The Figure 1 document (fresh copy per test)."""
    return parse_document(FIGURE1_XML)


@pytest.fixture
def figure1_oracle(figure1):
    return DocumentOracle(figure1)


@pytest.fixture
def figure1_labeling(figure1):
    return ContainmentLabeling().build(figure1)


@pytest.fixture
def small_doc():
    """A tiny mixed document: attributes, text, empty elements."""
    return parse_document(
        "<a x='1'><b>hi</b><c/><d k='v'>tail<e/></d></a>")


def forest(text):
    """Parse a forest of parameter trees (test helper)."""
    return parse_forest(text)


@pytest.fixture(name="forest")
def forest_fixture():
    return forest
