"""Example 5 / Table 3 of the paper, replayed on a Figure 1 shaped
document (our node ids; the roles match the paper's 4, 5, 7 and 16)."""

import pytest

from repro.pul.ops import (
    InsertAfter,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceNode,
)
from repro.pul.pul import PUL
from repro.reasoning import DocumentOracle
from repro.reduction import (
    canonical_form,
    reduce_deterministic,
    reduce_pul,
)
from repro.xdm import parse_document
from repro.xdm.parser import parse_forest

#: article (plays node 4), title (plays 5, first child), authors (plays 7,
#: last child), second authors element (plays 16)
DOC = ("<r><article><title>T</title><authors><author>A</author></authors>"
       "</article><article><authors><a1/><a2/></authors></article></r>")
ARTICLE, TITLE, AUTHORS, AUTHORS2 = 1, 2, 4, 8


@pytest.fixture
def example5():
    document = parse_document(DOC)
    ops = [
        InsertIntoAsFirst(ARTICLE, parse_forest("<year>2004</year>")),
        InsertIntoAsLast(ARTICLE, parse_forest("<month>March</month>")),
        Rename(TITLE, "title"),
        InsertAfter(AUTHORS, parse_forest("<author>A.Chaudhri</author>")),
        InsertBefore(TITLE, parse_forest(
            "<title>Report on EDBT04 ...</title>")),
        InsertAfter(AUTHORS, parse_forest("<author>G.Guerrini</author>")),
        InsertAfter(AUTHORS, parse_forest("<author>F.Cavalieri</author>")),
        ReplaceNode(TITLE, parse_forest("<author>M.Mesiti</author>")),
        InsertInto(AUTHORS2, parse_forest("<author>P.Gardner</author>")),
    ]
    return document, PUL(ops), DocumentOracle(document)


def by_name(pul):
    return {op.op_name + str(op.target): op for op in pul}


class TestExample5:
    def test_reduction_shape(self, example5):
        __, pul, oracle = example5
        reduced = reduce_pul(pul, oracle)
        assert len(reduced) == 3
        ops = by_name(reduced)
        rep_n = ops["replaceNode{}".format(TITLE)]
        assert rep_n.param_key() == (
            "<year>2004</year><title>Report on EDBT04 ...</title>"
            "<author>M.Mesiti</author>")
        ins_after = ops["insertAfter{}".format(AUTHORS)]
        assert ins_after.param_key() == (
            "<author>A.Chaudhri</author><author>G.Guerrini</author>"
            "<author>F.Cavalieri</author><month>March</month>")
        assert "insertInto{}".format(AUTHORS2) in ops

    def test_reduction_is_not_deterministic(self, example5):
        document, pul, oracle = example5
        from repro.pul.equivalence import obtainable_strings
        reduced = reduce_pul(pul, oracle)
        assert len(obtainable_strings(document, reduced)) == 3

    def test_deterministic_reduction(self, example5):
        document, pul, oracle = example5
        from repro.pul.equivalence import obtainable_strings
        deterministic = reduce_deterministic(pul, oracle)
        ops = by_name(deterministic)
        assert "insertIntoAsFirst{}".format(AUTHORS2) in ops
        assert len(obtainable_strings(document, deterministic)) == 1

    def test_canonical_form_matches_table3(self, example5):
        __, pul, oracle = example5
        canonical = by_name(canonical_form(pul, oracle))
        ins_after = canonical["insertAfter{}".format(AUTHORS)]
        # canonical form reorders the collapsed inserts lexicographically
        assert ins_after.param_key() == (
            "<author>A.Chaudhri</author><author>F.Cavalieri</author>"
            "<author>G.Guerrini</author><month>March</month>")

    def test_substitutability_proposition1(self, example5):
        document, pul, oracle = example5
        from repro.pul.equivalence import obtainable_strings
        full = obtainable_strings(document, pul)
        for reducer in (reduce_pul, reduce_deterministic, canonical_form):
            assert obtainable_strings(
                document, reducer(pul, oracle)) <= full

    def test_obtainable_cardinality_chain(self, example5):
        document, pul, oracle = example5
        from repro.pul.equivalence import obtainable_strings
        sizes = [len(obtainable_strings(document, p)) for p in (
            pul, reduce_pul(pul, oracle),
            reduce_deterministic(pul, oracle),
            canonical_form(pul, oracle))]
        assert sizes[0] >= sizes[1] >= sizes[2] == sizes[3] == 1

    def test_canonical_unique_under_shuffle(self, example5):
        import random
        __, pul, oracle = example5
        reference = canonical_form(pul, oracle)
        ops = pul.operations()
        for seed in range(8):
            shuffled = ops[:]
            random.Random(seed).shuffle(shuffled)
            assert canonical_form(PUL(shuffled), oracle) == reference

    def test_idempotence(self, example5):
        __, pul, oracle = example5
        for reducer in (reduce_pul, reduce_deterministic, canonical_form):
            once = reducer(pul, oracle)
            assert reducer(once, oracle) == once
