"""Per-rule tests of Figure 2.

Each test builds the minimal document exhibiting the rule's structural
side condition, checks that the rule produces the expected merged
operation, and — where meaningful — that the merged operation is
substitutable to the original pair (the semantic justification, via
obtainable sets).
"""

import pytest

from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.equivalence import obtainable_strings
from repro.reasoning import DocumentOracle
from repro.reduction.rules import REDUCTION_RULES
from repro.xdm import parse_document
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest

RULES = {rule.rule_id: rule for rule in REDUCTION_RULES}

#: <r><p><q/><s/></p></r> : r=0 p=1 q=2 s=3  (q first child, s last child)
DOC = "<r><p><q/><s/></p></r>"


@pytest.fixture
def doc():
    return parse_document(DOC)


@pytest.fixture
def oracle(doc):
    return DocumentOracle(doc)


def check_substitutable(doc, original_ops, reduced_ops):
    reduced = obtainable_strings(doc, PUL(reduced_ops))
    full = obtainable_strings(doc, PUL(original_ops))
    assert reduced <= full


class TestOverridingRules:
    @pytest.mark.parametrize("victim", [
        Rename(2, "x"), ReplaceValue(2, "v"), ReplaceChildren(2, "t"),
        Delete(2), InsertIntoAsFirst(2, parse_forest("<n/>")),
        InsertIntoAsLast(2, parse_forest("<n/>")),
        InsertInto(2, parse_forest("<n/>")),
        InsertAttributes(2, [Node.attribute("k", "v")]),
    ])
    def test_o1_same_target(self, oracle, victim):
        killer = ReplaceNode(2, parse_forest("<z/>"))
        assert RULES["O1"].match(victim, killer, oracle) is killer

    def test_o1_not_for_sibling_inserts(self, oracle):
        survivor = InsertBefore(2, parse_forest("<n/>"))
        killer = Delete(2)
        assert RULES["O1"].match(survivor, killer, oracle) is None

    def test_o1_delete_overridden_by_repn(self, oracle):
        deletion = Delete(2)
        replacement = ReplaceNode(2, parse_forest("<z/>"))
        assert RULES["O1"].match(deletion, replacement,
                                 oracle) is replacement

    def test_o2_child_inserts_under_repc(self, oracle):
        victim = InsertIntoAsFirst(2, parse_forest("<n/>"))
        killer = ReplaceChildren(2, "t")
        assert RULES["O2"].match(victim, killer, oracle) is killer

    def test_o2_not_for_insa(self, oracle):
        from repro.xdm.node import Node
        victim = InsertAttributes(2, [Node.attribute("k", "v")])
        killer = ReplaceChildren(2, "t")
        assert RULES["O2"].match(victim, killer, oracle) is None

    def test_o3_descendant_killed(self, oracle):
        victim = Rename(2, "x")
        killer = Delete(1)
        assert RULES["O3"].match(victim, killer, oracle) is killer

    def test_o3_requires_strict_descent(self, oracle):
        victim = Rename(2, "x")
        killer = Delete(3)  # sibling, not ancestor
        assert RULES["O3"].match(victim, killer, oracle) is None

    def test_o4_repc_kills_descendants(self, oracle):
        victim = Rename(2, "x")
        killer = ReplaceChildren(1, "t")
        assert RULES["O4"].match(victim, killer, oracle) is killer

    def test_o4_spares_direct_attributes(self):
        doc = parse_document("<r><p k='v'/></r>")  # r=0 p=1 @k=2
        oracle = DocumentOracle(doc)
        victim = ReplaceValue(2, "w")
        killer = ReplaceChildren(1, "t")
        assert RULES["O4"].match(victim, killer, oracle) is None


class TestInsertCollapse:
    def test_i5_same_variant(self, doc, oracle):
        op1 = InsertAfter(2, parse_forest("<n1/>"))
        op2 = InsertAfter(2, parse_forest("<n2/>"))
        merged = RULES["I5"].match(op1, op2, oracle)
        assert merged.param_key() == "<n1/><n2/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_i5_different_variants_do_not_match(self, oracle):
        op1 = InsertAfter(2, parse_forest("<n1/>"))
        op2 = InsertBefore(2, parse_forest("<n2/>"))
        assert RULES["I5"].match(op1, op2, oracle) is None

    def test_i6_into_then_first(self, doc, oracle):
        op1 = InsertInto(1, parse_forest("<n1/>"))
        op2 = InsertIntoAsFirst(1, parse_forest("<n2/>"))
        merged = RULES["I6"].match(op1, op2, oracle)
        assert merged.op_name == "insertIntoAsFirst"
        assert merged.param_key() == "<n2/><n1/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_i7_into_then_last(self, doc, oracle):
        op1 = InsertInto(1, parse_forest("<n1/>"))
        op2 = InsertIntoAsLast(1, parse_forest("<n2/>"))
        merged = RULES["I7"].match(op1, op2, oracle)
        assert merged.op_name == "insertIntoAsLast"
        assert merged.param_key() == "<n1/><n2/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_i10_into_merges_with_childs_before(self, doc, oracle):
        op1 = InsertInto(1, parse_forest("<n1/>"))
        op2 = InsertBefore(2, parse_forest("<n2/>"))
        merged = RULES["I10"].match(op1, op2, oracle)
        assert merged.op_name == "insertBefore"
        assert merged.target == 2
        assert merged.param_key() == "<n1/><n2/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_i11_into_merges_with_childs_after(self, doc, oracle):
        op1 = InsertInto(1, parse_forest("<n1/>"))
        op2 = InsertAfter(2, parse_forest("<n2/>"))
        merged = RULES["I11"].match(op1, op2, oracle)
        assert merged.target == 2
        assert merged.param_key() == "<n2/><n1/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_i14_first_child_anchor(self, doc, oracle):
        op1 = InsertBefore(2, parse_forest("<n1/>"))
        op2 = InsertIntoAsFirst(1, parse_forest("<n2/>"))
        merged = RULES["I14"].match(op1, op2, oracle)
        assert merged.op_name == "insertBefore"
        assert merged.param_key() == "<n2/><n1/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_i15_last_child_anchor(self, doc, oracle):
        op1 = InsertAfter(3, parse_forest("<n1/>"))
        op2 = InsertIntoAsLast(1, parse_forest("<n2/>"))
        merged = RULES["I15"].match(op1, op2, oracle)
        assert merged.param_key() == "<n1/><n2/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_i18_adjacent_siblings(self, doc, oracle):
        op1 = InsertBefore(3, parse_forest("<n1/>"))
        op2 = InsertAfter(2, parse_forest("<n2/>"))
        merged = RULES["I18"].match(op1, op2, oracle)
        assert merged.op_name == "insertBefore"
        assert merged.target == 3
        assert merged.param_key() == "<n2/><n1/>"
        check_substitutable(doc, [op1, op2], [merged])


class TestReplaceAbsorption:
    def test_ir8_repn_absorbs_before(self, doc, oracle):
        op1 = ReplaceNode(2, parse_forest("<z/>"))
        op2 = InsertBefore(2, parse_forest("<n/>"))
        merged = RULES["IR8"].match(op1, op2, oracle)
        assert merged.param_key() == "<n/><z/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_ir9_repn_absorbs_after(self, doc, oracle):
        op1 = ReplaceNode(2, parse_forest("<z/>"))
        op2 = InsertAfter(2, parse_forest("<n/>"))
        merged = RULES["IR9"].match(op1, op2, oracle)
        assert merged.param_key() == "<z/><n/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_ir12_child_repn_absorbs_parent_into(self, doc, oracle):
        op1 = ReplaceNode(2, parse_forest("<z/>"))
        op2 = InsertInto(1, parse_forest("<n/>"))
        merged = RULES["IR12"].match(op1, op2, oracle)
        assert merged.param_key() == "<z/><n/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_ir13_attribute_repn_absorbs_insa(self):
        from repro.xdm.node import Node
        doc = parse_document("<r><p k='v'/></r>")
        oracle = DocumentOracle(doc)
        op1 = ReplaceNode(2, [Node.attribute("k1", "w1")])
        op2 = InsertAttributes(1, [Node.attribute("k2", "w2")])
        merged = RULES["IR13"].match(op1, op2, oracle)
        assert merged.op_name == "replaceNode"
        assert len(merged.trees) == 2
        check_substitutable(doc, [op1, op2], [merged])

    def test_ir16_first_child_repn_absorbs_first_insert(self, doc, oracle):
        op1 = ReplaceNode(2, parse_forest("<z/>"))
        op2 = InsertIntoAsFirst(1, parse_forest("<n/>"))
        merged = RULES["IR16"].match(op1, op2, oracle)
        assert merged.param_key() == "<n/><z/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_ir17_last_child_repn_absorbs_last_insert(self, doc, oracle):
        op1 = ReplaceNode(3, parse_forest("<z/>"))
        op2 = InsertIntoAsLast(1, parse_forest("<n/>"))
        merged = RULES["IR17"].match(op1, op2, oracle)
        assert merged.param_key() == "<z/><n/>"
        check_substitutable(doc, [op1, op2], [merged])

    def test_ir19_erratum_order(self, doc, oracle):
        """The printed rule says [L1, L2]; only [L2, L1] is substitutable
        (DESIGN.md errata)."""
        op1 = ReplaceNode(3, parse_forest("<z/>"))
        op2 = InsertAfter(2, parse_forest("<n/>"))
        merged = RULES["IR19"].match(op1, op2, oracle)
        assert merged.param_key() == "<n/><z/>"
        check_substitutable(doc, [op1, op2], [merged])
        # the printed order is NOT substitutable:
        printed = op1.with_trees(
            list(op1.trees) + list(op2.trees))
        reduced = obtainable_strings(doc, PUL([printed]))
        full = obtainable_strings(doc, PUL([op1, op2]))
        assert not reduced <= full

    def test_ir20_erratum_order(self, doc, oracle):
        op1 = ReplaceNode(2, parse_forest("<z/>"))
        op2 = InsertBefore(3, parse_forest("<n/>"))
        merged = RULES["IR20"].match(op1, op2, oracle)
        assert merged.param_key() == "<z/><n/>"
        check_substitutable(doc, [op1, op2], [merged])
