"""Property-based tests of Proposition 1 on random documents and PULs,
plus agreement between the optimized and the naive reference engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pul.equivalence import obtainable_strings
from repro.pul.pul import PUL
from repro.pul.semantics import ObtainableLimitExceeded
from repro.reasoning import DocumentOracle
from repro.reduction import (
    canonical_form,
    reduce_deterministic,
    reduce_naive,
    reduce_pul,
)

from tests.strategies import applicable_puls, documents

_SETTINGS = dict(max_examples=60, deadline=None)


@settings(**_SETTINGS)
@given(st.data())
def test_reductions_are_substitutable(data):
    """Proposition 1, first item: every reduction flavour is
    substitutable to the original PUL."""
    document = data.draw(documents(max_depth=2, max_children=2))
    pul = data.draw(applicable_puls(document, max_ops=5))
    oracle = DocumentOracle(document)
    try:
        full = obtainable_strings(document, pul, limit=4000)
    except ObtainableLimitExceeded:
        return
    for reducer in (reduce_pul, reduce_deterministic, canonical_form):
        reduced = reducer(pul, oracle)
        assert obtainable_strings(document, reduced, limit=4000) <= full


@settings(**_SETTINGS)
@given(st.data())
def test_cardinality_chain(data):
    """Proposition 1, second item: |O(∆)| >= |O(∆^O)| >= |O(∆^H)| = 1."""
    document = data.draw(documents(max_depth=2, max_children=2))
    pul = data.draw(applicable_puls(document, max_ops=5))
    oracle = DocumentOracle(document)
    try:
        full = len(obtainable_strings(document, pul, limit=4000))
        plain = len(obtainable_strings(
            document, reduce_pul(pul, oracle), limit=4000))
        deterministic = len(obtainable_strings(
            document, reduce_deterministic(pul, oracle), limit=4000))
    except ObtainableLimitExceeded:
        return
    assert full >= plain >= deterministic == 1


@settings(**_SETTINGS)
@given(st.data())
def test_canonical_is_unique(data):
    """Proposition 1, third item: the canonical form does not depend on
    the operations' list order."""
    document = data.draw(documents(max_depth=2, max_children=2))
    pul = data.draw(applicable_puls(document, max_ops=6))
    oracle = DocumentOracle(document)
    reference = canonical_form(pul, oracle)
    ops = pul.operations()
    seed = data.draw(st.integers(0, 2 ** 16))
    shuffled = ops[:]
    random.Random(seed).shuffle(shuffled)
    assert canonical_form(PUL(shuffled), oracle) == reference


@settings(**_SETTINGS)
@given(st.data())
def test_reduction_idempotent(data):
    """Proposition 1, fourth item: (∆^r)^r = ∆^r."""
    document = data.draw(documents(max_depth=2, max_children=2))
    pul = data.draw(applicable_puls(document, max_ops=6))
    oracle = DocumentOracle(document)
    for reducer in (reduce_pul, reduce_deterministic, canonical_form):
        once = reducer(pul, oracle)
        assert reducer(once, oracle) == once


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_optimized_engine_matches_naive_reference(data):
    """The staged O(k log k) engine computes a result equivalent to the
    naive pairwise engine: identical canonical forms, and plain
    reductions of identical size with identical obtainable sets."""
    document = data.draw(documents(max_depth=2, max_children=2))
    pul = data.draw(applicable_puls(document, max_ops=5))
    oracle = DocumentOracle(document)
    fast = canonical_form(pul, oracle)
    slow = reduce_naive(pul, oracle, canonical=True)
    assert fast == slow


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_reduced_pul_still_applicable(data):
    document = data.draw(documents(max_depth=2, max_children=2))
    pul = data.draw(applicable_puls(document, max_ops=6))
    oracle = DocumentOracle(document)
    reduced = reduce_deterministic(pul, oracle)
    assert reduced.is_applicable(document)
