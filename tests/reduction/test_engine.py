"""Engine-level reduction tests (staging, O3/O4 sweep, label oracles)."""

from repro.labeling import ContainmentLabeling
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.reasoning import DocumentOracle, LabelOracle
from repro.reduction import reduce_deterministic, reduce_pul
from repro.xdm import parse_document
from repro.xdm.parser import parse_forest


class TestStage1:
    def test_same_target_overrides(self, small_doc):
        oracle = DocumentOracle(small_doc)
        pul = PUL([Rename(2, "dead"), ReplaceValue(7, "kept"),
                   Delete(2), ReplaceNode(2, parse_forest("<z/>"))])
        reduced = reduce_pul(pul, oracle)
        names = sorted(op.op_name for op in reduced)
        assert names == ["replaceNode", "replaceValue"]

    def test_duplicate_deletes_collapse(self, small_doc):
        oracle = DocumentOracle(small_doc)
        reduced = reduce_pul(PUL([Delete(2), Delete(2)]), oracle)
        assert len(reduced) == 1

    def test_descendant_sweep_deep_nesting(self):
        doc = parse_document("<a><b><c><d/></c></b></a>")
        oracle = DocumentOracle(doc)
        pul = PUL([Rename(3, "x"), Delete(2), Delete(1)])
        reduced = reduce_pul(pul, oracle)
        # everything under <b> (node 1) dies; only del(1) remains
        assert reduced == PUL([Delete(1)])

    def test_sweep_inner_killer_also_dropped(self):
        doc = parse_document("<a><b><c><d/></c></b></a>")
        oracle = DocumentOracle(doc)
        # ren on d must die even though its nearest killer (del c) is
        # itself overridden by del b
        pul = PUL([Rename(3, "x"), ReplaceNode(2, parse_forest("<z/>")),
                   Delete(1)])
        assert reduce_pul(pul, oracle) == PUL([Delete(1)])

    def test_repc_sweep_spares_own_attributes(self):
        doc = parse_document("<a><b k='v'><c/></b></a>")
        oracle = DocumentOracle(doc)
        # b=1, @k=2, c=3
        pul = PUL([ReplaceChildren(1, "t"), ReplaceValue(2, "w"),
                   Rename(3, "dead")])
        reduced = reduce_pul(pul, oracle)
        names = sorted(op.op_name for op in reduced)
        assert names == ["replaceChildren", "replaceValue"]

    def test_sibling_inserts_survive_killers(self, small_doc):
        oracle = DocumentOracle(small_doc)
        pul = PUL([InsertBefore(2, parse_forest("<p/>")), Delete(2)])
        reduced = reduce_pul(pul, oracle)
        assert len(reduced) == 2


class TestLaterStages:
    def test_chain_through_stages(self):
        # ins↓ + ins↙ (stage 2) then the merged ins↙ meets a first-child
        # ins← at stage 8
        doc = parse_document("<a><b/><c/></a>")
        oracle = DocumentOracle(doc)
        pul = PUL([
            InsertInto(0, parse_forest("<n1/>")),
            InsertIntoAsFirst(0, parse_forest("<n2/>")),
            InsertBefore(1, parse_forest("<n3/>")),
        ])
        reduced = reduce_pul(pul, oracle)
        assert len(reduced) == 1
        (op,) = reduced
        assert op.op_name == "insertBefore"
        assert op.param_key() == "<n2/><n1/><n3/>"

    def test_into_prefers_smallest_child_anchor(self):
        doc = parse_document("<a><b/><c/></a>")
        oracle = DocumentOracle(doc)
        pul = PUL([
            InsertInto(0, parse_forest("<n/>")),
            InsertBefore(1, parse_forest("<x/>")),
            InsertBefore(2, parse_forest("<y/>")),
        ])
        from repro.reduction import canonical_form
        reduced = canonical_form(pul, oracle)
        merged = next(op for op in reduced if op.target == 1)
        assert merged.param_key() == "<n/><x/>"

    def test_only_child_receives_both_edges(self):
        doc = parse_document("<a><b/></a>")
        oracle = DocumentOracle(doc)
        pul = PUL([
            ReplaceNode(1, parse_forest("<z/>")),
            InsertIntoAsFirst(0, parse_forest("<f/>")),
            InsertIntoAsLast(0, parse_forest("<l/>")),
        ])
        reduced = reduce_pul(pul, oracle)
        assert len(reduced) == 1
        (op,) = reduced
        assert op.param_key() == "<f/><z/><l/>"

    def test_stage9_cascade(self):
        doc = parse_document("<a><b/><c/></a>")
        oracle = DocumentOracle(doc)
        pul = PUL([
            ReplaceNode(1, parse_forest("<z/>")),
            InsertAfter(1, parse_forest("<m/>")),   # IR9 (same target)
            InsertBefore(2, parse_forest("<n/>")),  # IR20 (left sibling)
        ])
        reduced = reduce_pul(pul, oracle)
        assert len(reduced) == 1
        (op,) = reduced
        assert op.param_key() == "<z/><m/><n/>"

    def test_i18_then_ir20_chain(self):
        doc = parse_document("<a><b/><c/><d/></a>")
        oracle = DocumentOracle(doc)
        pul = PUL([
            ReplaceNode(1, parse_forest("<z/>")),
            InsertAfter(2, parse_forest("<p/>")),
            InsertBefore(3, parse_forest("<q/>")),
        ])
        reduced = reduce_pul(pul, oracle)
        # ins→(c) merges into ins←(d) (I18); nothing links them to repN(b)
        names = sorted(op.op_name for op in reduced)
        assert names == ["insertBefore", "replaceNode"]
        merged = next(op for op in reduced if op.op_name == "insertBefore")
        assert merged.param_key() == "<p/><q/>"


class TestOracles:
    def test_label_oracle_equivalent_to_document_oracle(self, figure1):
        labeling = ContainmentLabeling().build(figure1)
        pul = PUL([
            Rename(8, "t"),
            ReplaceNode(8, parse_forest("<z/>")),
            InsertAfter(14, parse_forest("<extra/>")),
            InsertIntoAsLast(7, parse_forest("<last/>")),
        ]).attach_labels(labeling)
        via_doc = reduce_pul(pul, DocumentOracle(figure1))
        via_labels = reduce_pul(pul, LabelOracle(pul.labels))
        assert via_doc == via_labels

    def test_pul_labels_used_by_default(self, figure1):
        labeling = ContainmentLabeling().build(figure1)
        pul = PUL([Rename(8, "t"), Delete(8)]).attach_labels(labeling)
        reduced = reduce_pul(pul)
        assert reduced == PUL([Delete(8)])

    def test_labels_preserved_through_reduction(self, figure1):
        labeling = ContainmentLabeling().build(figure1)
        pul = PUL([Delete(8)]).attach_labels(labeling)
        assert reduce_pul(pul).labels == pul.labels


class TestDeterministicStage10:
    def test_surviving_into_becomes_first(self, small_doc):
        oracle = DocumentOracle(small_doc)
        pul = PUL([InsertInto(0, parse_forest("<n/>"))])
        det = reduce_deterministic(pul, oracle)
        (op,) = det
        assert op.op_name == "insertIntoAsFirst"

    def test_consumed_into_not_duplicated(self, small_doc):
        oracle = DocumentOracle(small_doc)
        pul = PUL([InsertInto(0, parse_forest("<n/>")),
                   InsertIntoAsFirst(0, parse_forest("<m/>"))])
        det = reduce_deterministic(pul, oracle)
        assert len(det) == 1
