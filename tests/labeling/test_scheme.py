"""Tests for label construction and update-tolerant maintenance."""

import pytest
from hypothesis import given, settings

from repro.labeling import CDQSEncoder, ContainmentLabeling
from repro.labeling import predicates as P
from repro.xdm.navigation import (
    depth,
    is_ancestor,
    is_attribute_of,
    is_first_child,
    is_last_child,
    is_left_sibling,
    is_parent,
    precedes,
)
from repro.xdm.node import Node

from tests.strategies import documents


def assert_labels_match_tree(document, labeling):
    """Every Table 1 predicate computed on labels must agree with the
    navigational ground truth."""
    nodes = list(document.nodes())
    for node in nodes:
        label = labeling.label_of(node.node_id)
        assert label.node_type is node.node_type
        assert label.level == depth(node)
        parent = node.parent
        assert label.parent_id == (parent.node_id if parent else None)
    for one in nodes:
        l1 = labeling.label_of(one.node_id)
        for two in nodes:
            if one is two:
                continue
            l2 = labeling.label_of(two.node_id)
            assert P.is_descendant(l1, l2) == is_ancestor(two, one)
            assert P.is_child(l1, l2) == is_parent(two, one)
            assert P.is_attribute_of(l1, l2) == is_attribute_of(one, two)
            assert P.is_left_sibling(l1, l2) == is_left_sibling(one, two)
            assert P.is_first_child(l1, l2) == (
                is_parent(two, one) and is_first_child(one))
            assert P.is_last_child(l1, l2) == (
                is_parent(two, one) and is_last_child(one))
            assert P.precedes(l1, l2) == precedes(one, two)
            assert P.is_nonattribute_descendant(l1, l2) == (
                is_ancestor(two, one) and not is_attribute_of(one, two))


class TestBuild:
    def test_figure1_predicates(self, figure1):
        labeling = ContainmentLabeling().build(figure1)
        assert_labels_match_tree(figure1, labeling)

    def test_cdqs_encoder(self, figure1):
        labeling = ContainmentLabeling(encoder=CDQSEncoder()).build(figure1)
        assert_labels_match_tree(figure1, labeling)

    def test_empty_document(self):
        from repro.xdm.document import Document
        labeling = ContainmentLabeling().build(Document())
        assert len(labeling) == 0

    def test_lookup_api(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        assert 0 in labeling
        assert labeling.find(999) is None
        from repro.errors import LabelingError
        with pytest.raises(LabelingError):
            labeling.label_of(999)

    @settings(max_examples=30, deadline=None)
    @given(documents())
    def test_random_documents(self, document):
        labeling = ContainmentLabeling().build(document)
        assert_labels_match_tree(document, labeling)


class TestSync:
    def test_existing_codes_never_change(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        before = {nid: (lab.start, lab.end)
                  for nid, lab in labeling.as_mapping().items()}
        parent = small_doc.get(0)
        for position in (0, 2, len(parent.children)):
            tree = Node.element("ins{}".format(position))
            parent.insert_child(min(position, len(parent.children)), tree)
            small_doc.register_tree(tree)
        labeling.sync(small_doc)
        for node_id, codes in before.items():
            label = labeling.label_of(node_id)
            assert (label.start, label.end) == codes

    def test_new_nodes_labeled_consistently(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        parent = small_doc.get(4)  # <c/>
        tree = Node.element("kid")
        tree.append_child(Node.text("payload"))
        parent.append_child(tree)
        small_doc.register_tree(tree)
        labeling.sync(small_doc)
        assert_labels_match_tree(small_doc, labeling)

    def test_removed_nodes_forgotten(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        victim = small_doc.get(2)
        small_doc.detach_node(victim)
        labeling.sync(small_doc)
        assert 2 not in labeling
        assert_labels_match_tree(small_doc, labeling)

    def test_sibling_pointers_updated(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        parent = small_doc.get(0)
        middle = Node.element("mid")
        parent.insert_child(1, middle)
        small_doc.register_tree(middle)
        labeling.sync(small_doc)
        left = labeling.label_of(parent.children[0].node_id)
        mid = labeling.label_of(middle.node_id)
        right = labeling.label_of(parent.children[2].node_id)
        assert left.right_sibling_id == middle.node_id
        assert mid.left_sibling_id == parent.children[0].node_id
        assert mid.right_sibling_id == parent.children[2].node_id
        assert right.left_sibling_id == middle.node_id

    @settings(max_examples=20, deadline=None)
    @given(documents(), documents(max_depth=1))
    def test_random_insertion_keeps_invariants(self, document, extra):
        labeling = ContainmentLabeling().build(document)
        before = {nid: (lab.start, lab.end)
                  for nid, lab in labeling.as_mapping().items()}
        host = document.root
        graft = extra.root.deep_copy()
        host.insert_child(len(host.children) // 2, graft)
        document.register_tree(graft)
        labeling.sync(document)
        assert_labels_match_tree(document, labeling)
        for node_id, codes in before.items():
            label = labeling.label_of(node_id)
            assert (label.start, label.end) == codes


class TestAssignTree:
    def test_assign_between_children(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        first = labeling.label_of(2)
        second = labeling.label_of(4)
        tree = Node.element("wedge", node_id=100)
        labeling.assign_tree([tree], parent_id=0, parent_level=0,
                             left_code=first.end, right_code=second.start)
        wedge = labeling.label_of(100)
        assert P.is_child(wedge, labeling.label_of(0))
        assert P.precedes(first, wedge)
        assert P.precedes(wedge, second)

    def test_attached_tree_rejected(self, small_doc):
        from repro.errors import LabelingError
        labeling = ContainmentLabeling().build(small_doc)
        with pytest.raises(LabelingError):
            labeling.assign_tree([small_doc.get(2)], 0, 0, None, None)

    def test_forget(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        labeling.forget(2)
        assert 2 not in labeling
        labeling.forget(2)  # idempotent


class TestMaxCodeLength:
    def test_build_tracks_longest_code(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        expected = max(
            max(len(label.start), len(label.end))
            for label in labeling.as_mapping().values())
        assert labeling.max_code_length == expected
        assert ContainmentLabeling().max_code_length == 0

    def test_grows_under_hot_spot_insertions(self, small_doc):
        """Repeated insertion between the same neighbors lengthens codes
        monotonically — the headroom signal the store's full-relabel
        fallback watches."""
        labeling = ContainmentLabeling().build(small_doc)
        baseline = labeling.max_code_length
        left = labeling.label_of(2).end
        right = labeling.label_of(4).start
        observed = [baseline]
        for serial in range(8):
            tree = Node.element("hot", node_id=200 + serial)
            labeling.assign_tree([tree], parent_id=0, parent_level=0,
                                 left_code=left, right_code=right)
            left = labeling.label_of(tree.node_id).end
            observed.append(labeling.max_code_length)
        assert observed == sorted(observed)
        assert observed[-1] > baseline

    def test_full_rebuild_rebalances(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        left = labeling.label_of(2).end
        right = labeling.label_of(4).start
        for serial in range(8):
            tree = Node.element("hot", node_id=300 + serial)
            labeling.assign_tree([tree], parent_id=0, parent_level=0,
                                 left_code=left, right_code=right)
            left = labeling.label_of(tree.node_id).end
        degraded = labeling.max_code_length
        document = small_doc.copy()
        labeling.build(document)
        assert labeling.max_code_length < degraded

    def test_import_label_tracks(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        from repro.labeling.containment import ExtendedLabel
        from repro.xdm.node import NodeType
        long_code = "1" * (labeling.max_code_length + 5)
        labeling.import_label(ExtendedLabel(
            node_id=999, node_type=NodeType.ELEMENT,
            start=long_code, end=long_code + "1", level=1))
        assert labeling.max_code_length == len(long_code) + 1
