"""String ≡ interned differential for the dynamic code arithmetic.

The interned (tuple-of-ints) fast path must be *definitionally* the
same arithmetic as the canonical string form: for any bounds, both
variants produce the identical code or raise the identical error. The
hypothesis suite drives both representations through the same random
insertion workloads and pins:

* equality — ``code_str(f_interned(intern(x))) == f(x)`` for
  ``code_between`` / ``_after`` / ``_before`` and both encoders'
  ``between`` / ``codes_between`` / ``initial_codes``;
* the ordering invariants, checked *on the interned form itself*
  (strictly between the bounds, never ending in digit 0, digits within
  the base) — not just inherited from the string suite.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LabelingError
from repro.labeling.codes import (
    CDBSEncoder,
    CDQSEncoder,
    _after,
    _after_interned,
    _before,
    _before_interned,
    code_between,
    code_between_interned,
    code_str,
    intern_code,
)

ENCODERS = [CDBSEncoder, CDQSEncoder]


@pytest.fixture(params=ENCODERS, ids=["CDBS", "CDQS"])
def encoder(request):
    return request.param()


def interned_codes(base):
    """Syntactically valid interned codes: nonempty, digits in the
    base, last digit nonzero (the no-trailing-zero rule)."""
    return st.builds(
        lambda body, last: tuple(body) + (last,),
        st.lists(st.integers(0, base - 1), max_size=6),
        st.integers(1, base - 1))


def both_or_neither(string_thunk, interned_thunk):
    """Run both variants; they must agree on the result *or* on the
    failure."""
    try:
        expected = string_thunk()
    except LabelingError:
        with pytest.raises(LabelingError):
            interned_thunk()
        return None
    actual = interned_thunk()
    assert code_str(actual) == expected
    return actual


class TestConversions:
    @given(interned_codes(4))
    def test_intern_code_str_roundtrip(self, code):
        assert intern_code(code_str(code)) == code

    def test_none_bounds_pass_through(self):
        assert intern_code(None) is None
        assert code_str(None) is None

    def test_intern_is_idempotent_on_tuples(self):
        assert intern_code((1, 0, 1)) == (1, 0, 1)
        assert intern_code("101") == (1, 0, 1)
        assert code_str("101") == "101"


class TestGenericArithmeticDifferential:
    @given(st.integers(2, 4).flatmap(
        lambda base: st.tuples(st.just(base),
                               st.none() | interned_codes(base),
                               st.none() | interned_codes(base))))
    @settings(max_examples=200)
    def test_code_between_matches_string_form(self, case):
        base, left, right = case
        result = both_or_neither(
            lambda: code_between(code_str(left), code_str(right), base),
            lambda: code_between_interned(left, right, base))
        if result is None:
            return
        # invariants checked on the interned form itself
        assert result[-1] != 0
        assert all(0 <= digit < base for digit in result)
        if left is not None:
            assert left < result
        if right is not None:
            assert result < right

    @given(st.integers(2, 4).flatmap(
        lambda base: st.tuples(st.just(base), interned_codes(base))))
    def test_after_and_before_match_string_form(self, case):
        base, code = case
        top = base - 1
        after = _after_interned(code, top)
        assert code_str(after) == _after(code_str(code), top)
        assert after > code and after[-1] != 0
        before = _before_interned(code)
        assert code_str(before) == _before(code_str(code))
        assert before < code and before[-1] != 0


class TestEncoderDifferential:
    @given(st.data(), st.sampled_from(ENCODERS))
    @settings(max_examples=60, deadline=None)
    def test_insertion_sequences_are_representation_blind(
            self, data, encoder_cls):
        """Drive the same random insertion workload through the string
        and the interned generators: the two code sequences must stay
        digit-for-digit identical, strictly ordered, zero-free at the
        tail."""
        encoder = encoder_cls()
        count = data.draw(st.integers(0, 6), label="initial")
        codes = encoder.initial_codes(count)
        interned = encoder.initial_codes_interned(count)
        assert [code_str(c) for c in interned] == codes
        for __ in range(data.draw(st.integers(1, 30), label="rounds")):
            index = data.draw(st.integers(0, len(codes)), label="slot")
            left = codes[index - 1] if index > 0 else None
            right = codes[index] if index < len(codes) else None
            fresh = encoder.between(left, right)
            fresh_interned = encoder.between_interned(
                intern_code(left), intern_code(right))
            assert code_str(fresh_interned) == fresh
            assert fresh_interned[-1] != 0
            assert all(0 <= d < encoder.base for d in fresh_interned)
            if left is not None:
                assert intern_code(left) < fresh_interned
            if right is not None:
                assert fresh_interned < intern_code(right)
            codes.insert(index, fresh)
            interned.insert(index, fresh_interned)
        assert interned == sorted(interned)
        assert [code_str(c) for c in interned] == codes

    @given(st.integers(0, 64), st.sampled_from(ENCODERS))
    @settings(max_examples=40, deadline=None)
    def test_bulk_generators_match(self, count, encoder_cls):
        encoder = encoder_cls()
        strings = encoder.initial_codes(count)
        interned = encoder.initial_codes_interned(count)
        assert [code_str(c) for c in interned] == strings
        if count:
            run = encoder.codes_between(strings[0], None, 5)
            run_interned = encoder.codes_between_interned(
                intern_code(strings[0]), None, 5)
            assert [code_str(c) for c in run_interned] == run

    def test_interned_bounds_reject_inversion(self, encoder):
        with pytest.raises(LabelingError):
            encoder.between_interned((1, 1), (1,))
        with pytest.raises(LabelingError):
            encoder.between_interned((1,), (1,))
