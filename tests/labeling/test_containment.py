"""Unit tests for the extended label value object."""

import pytest

from repro.errors import LabelingError
from repro.labeling.containment import ExtendedLabel
from repro.xdm.node import NodeType


def make_label(**overrides):
    fields = dict(node_id=5, node_type=NodeType.ELEMENT, start="01",
                  end="011", level=2, parent_id=3, left_sibling_id=4,
                  right_sibling_id=6)
    fields.update(overrides)
    return ExtendedLabel(**fields)


class TestLabel:
    def test_fields(self):
        label = make_label()
        assert label.node_id == 5
        assert label.level == 2

    def test_empty_interval_rejected(self):
        with pytest.raises(LabelingError):
            make_label(start="1", end="1")
        with pytest.raises(LabelingError):
            make_label(start="11", end="1")

    def test_roundtrip(self):
        label = make_label()
        assert ExtendedLabel.from_string(label.to_string()) == label

    def test_roundtrip_with_missing_siblings(self):
        label = make_label(parent_id=None, left_sibling_id=None,
                           right_sibling_id=None)
        restored = ExtendedLabel.from_string(label.to_string())
        assert restored.parent_id is None
        assert restored.left_sibling_id is None

    def test_roundtrip_all_types(self):
        for node_type in NodeType:
            label = make_label(node_type=node_type)
            assert ExtendedLabel.from_string(
                label.to_string()).node_type is node_type

    def test_malformed_string(self):
        with pytest.raises(LabelingError):
            ExtendedLabel.from_string("1;e;01")

    def test_replaced(self):
        label = make_label()
        changed = label.replaced(left_sibling_id=None)
        assert changed.left_sibling_id is None
        assert changed.start == label.start
        assert label.left_sibling_id == 4  # original untouched

    def test_equality_and_hash(self):
        assert make_label() == make_label()
        assert hash(make_label()) == hash(make_label())
        assert make_label() != make_label(level=9)
