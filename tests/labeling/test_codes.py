"""Unit and property tests for the CDBS/CDQS dynamic code encoders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LabelingError
from repro.labeling.codes import CDBSEncoder, CDQSEncoder, code_between


@pytest.fixture(params=[CDBSEncoder, CDQSEncoder], ids=["CDBS", "CDQS"])
def encoder(request):
    return request.param()


class TestInitialCodes:
    def test_sorted_and_unique(self, encoder):
        codes = encoder.initial_codes(100)
        assert codes == sorted(codes)
        assert len(set(codes)) == 100

    def test_singleton(self, encoder):
        assert encoder.initial_codes(1) == ["1"]

    def test_empty(self, encoder):
        assert encoder.initial_codes(0) == []

    def test_balanced_lengths(self, encoder):
        codes = encoder.initial_codes(1024)
        longest = max(len(code) for code in codes)
        # balanced assignment keeps codes logarithmic in the count
        assert longest <= 4 * 10 + 4

    def test_no_trailing_zero(self, encoder):
        assert all(code[-1] != "0" for code in encoder.initial_codes(200))


class TestBetween:
    def test_open_ends(self, encoder):
        middle = encoder.between(None, None)
        before = encoder.between(None, middle)
        after = encoder.between(middle, None)
        assert before < middle < after

    def test_inverted_bounds_rejected(self, encoder):
        with pytest.raises(LabelingError):
            encoder.between("11", "1")

    def test_equal_bounds_rejected(self, encoder):
        with pytest.raises(LabelingError):
            encoder.between("1", "1")

    def test_prefix_pair(self, encoder):
        # the pattern that broke the midpoint scan: left is a prefix of
        # right up to virtual zero padding
        new = encoder.between("1", "101")
        assert "1" < new < "101"

    def test_cdbs_published_rules(self):
        encoder = CDBSEncoder()
        assert encoder.between("1", "11") == "101"   # len(L) < len(R)
        assert encoder.between("101", "11") == "1011"  # len(L) >= len(R)
        assert encoder.between(None, "1") == "01"
        assert encoder.between("1", None) == "11"

    def test_codes_between_run(self, encoder):
        run = encoder.codes_between("1", "11", 10)
        assert run == sorted(run)
        assert all("1" < code < "11" for code in run)
        assert len(set(run)) == 10

    def test_code_between_generic_base(self):
        assert code_between(None, None, 4) == "1"
        new = code_between("1", "3", 4)
        assert "1" < new < "3"


@settings(max_examples=60, deadline=None)
@given(st.data(), st.sampled_from([CDBSEncoder, CDQSEncoder]))
def test_arbitrary_insertion_sequences_stay_ordered(data, encoder_cls):
    """Insert codes at random positions for a while: order is always
    strict and no existing code ever changes (update tolerance)."""
    encoder = encoder_cls()
    codes = encoder.initial_codes(
        data.draw(st.integers(0, 8), label="initial"))
    for __ in range(data.draw(st.integers(1, 40), label="rounds")):
        index = data.draw(st.integers(0, len(codes)), label="slot")
        left = codes[index - 1] if index > 0 else None
        right = codes[index] if index < len(codes) else None
        fresh = encoder.between(left, right)
        if left is not None:
            assert left < fresh
        if right is not None:
            assert fresh < right
        assert fresh[-1] != "0"
        codes.insert(index, fresh)
    assert codes == sorted(codes)
    assert len(set(codes)) == len(codes)
