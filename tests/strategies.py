"""Hypothesis strategies: random documents and random applicable PULs.

Documents are small labeled trees (bounded depth/fan-out) over a tiny name
alphabet, which keeps obtainable-set enumeration tractable while still
exercising attributes, text and nesting. PULs are drawn against a concrete
document so that applicability (Definition 4) holds by construction.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.xdm.document import Document
from repro.xdm.node import Node

_NAMES = ("a", "b", "c", "d", "e")
_VALUES = ("x", "y", "z", "")


@st.composite
def documents(draw, max_depth=3, max_children=3):
    """A random small document.

    The tree is normalized through a serialize/parse round trip so that it
    is *serialization-stable* (no adjacent text nodes that would merge on
    the wire and shift identifiers) — tests freely move between the tree
    and its text form.
    """

    def build(depth):
        element = Node.element(draw(st.sampled_from(_NAMES)))
        for index in range(draw(st.integers(0, 2))):
            element.append_attribute(Node.attribute(
                "k{}".format(index), draw(st.sampled_from(_VALUES))))
        if depth < max_depth:
            previous_text = False
            for __ in range(draw(st.integers(0, max_children))):
                if draw(st.booleans()):
                    element.append_child(build(depth + 1))
                    previous_text = False
                elif not previous_text:
                    element.append_child(Node.text(
                        draw(st.sampled_from(_VALUES)) or "t"))
                    previous_text = True
        return element

    from repro.xdm.parser import parse_document
    from repro.xdm.serializer import serialize
    return parse_document(serialize(Document(root=build(0))))


@st.composite
def parameter_forests(draw, allow_empty=False, stamp_ids_from=None):
    """A forest of 1-2 small non-attribute trees."""
    trees = []
    count = draw(st.integers(0 if allow_empty else 1, 2))
    for __ in range(count):
        if draw(st.booleans()):
            element = Node.element(draw(st.sampled_from(_NAMES)))
            if draw(st.booleans()):
                element.append_child(Node.text("v"))
            trees.append(element)
        else:
            trees.append(Node.text(draw(st.sampled_from(("p", "q")))))
    return trees


@st.composite
def applicable_puls(draw, document, max_ops=6, stamp_ids=False,
                    include_into=True):
    """A PUL applicable on ``document`` (targets drawn from its nodes,
    replacement-class uniqueness respected, unique attribute names).

    ``stamp_ids=True`` assigns fresh identifiers to all parameter nodes
    (the producer-side assignment of Section 4.1), enabling follow-up PULs
    and aggregation tests to reference new nodes.
    """
    nodes = list(document.nodes())
    elements = [n for n in nodes if n.is_element]
    non_root = [n for n in nodes
                if n.parent is not None and not n.is_attribute]
    texts_attrs = [n for n in nodes if n.is_text or n.is_attribute]
    attributes = [n for n in nodes if n.is_attribute]

    used_replace = set()
    ops = []
    serial = {"attr": 0, "id": max(document.node_ids(), default=0) + 100}

    def stamp(trees):
        if not stamp_ids:
            return trees
        for tree in trees:
            for node in tree.iter_subtree():
                node.node_id = serial["id"]
                serial["id"] += 1
        return trees

    kinds = ["ins_before", "ins_after", "ins_first", "ins_last",
             "ins_attr", "delete", "rep_node", "rep_value",
             "rep_children", "rename"]
    if include_into:
        kinds.append("ins_into")

    for __ in range(draw(st.integers(0, max_ops))):
        kind = draw(st.sampled_from(kinds))
        if kind in ("ins_before", "ins_after") and non_root:
            target = draw(st.sampled_from(non_root))
            trees = stamp(draw(parameter_forests()))
            op_class = InsertBefore if kind == "ins_before" else InsertAfter
            ops.append(op_class(target.node_id, trees))
        elif kind in ("ins_first", "ins_last", "ins_into") and elements:
            target = draw(st.sampled_from(elements))
            trees = stamp(draw(parameter_forests()))
            op_class = {"ins_first": InsertIntoAsFirst,
                        "ins_last": InsertIntoAsLast,
                        "ins_into": InsertInto}[kind]
            ops.append(op_class(target.node_id, trees))
        elif kind == "ins_attr" and elements:
            target = draw(st.sampled_from(elements))
            serial["attr"] += 1
            attr = Node.attribute("g{}".format(serial["attr"]), "w")
            ops.append(InsertAttributes(target.node_id, stamp([attr])))
        elif kind == "delete" and non_root:
            target = draw(st.sampled_from(non_root + attributes))
            ops.append(Delete(target.node_id))
        elif kind == "rep_node" and non_root:
            target = draw(st.sampled_from(non_root))
            if ("replaceNode", target.node_id) in used_replace:
                continue
            used_replace.add(("replaceNode", target.node_id))
            trees = stamp(draw(parameter_forests(allow_empty=True)))
            ops.append(ReplaceNode(target.node_id, trees))
        elif kind == "rep_value" and texts_attrs:
            target = draw(st.sampled_from(texts_attrs))
            if ("replaceValue", target.node_id) in used_replace:
                continue
            used_replace.add(("replaceValue", target.node_id))
            ops.append(ReplaceValue(target.node_id,
                                    draw(st.sampled_from(("nv", "")))))
        elif kind == "rep_children" and elements:
            target = draw(st.sampled_from(elements))
            if ("replaceChildren", target.node_id) in used_replace:
                continue
            used_replace.add(("replaceChildren", target.node_id))
            content = draw(st.sampled_from(("rc", "")))
            trees = stamp([Node.text(content)]) if content else []
            ops.append(ReplaceChildren(target.node_id, trees))
        elif kind == "rename":
            pool = elements + attributes
            target = draw(st.sampled_from(pool))
            if ("rename", target.node_id) in used_replace:
                continue
            used_replace.add(("rename", target.node_id))
            ops.append(Rename(target.node_id,
                              draw(st.sampled_from(("rn1", "rn2")))))
    return PUL(ops)


#: origins exercising the attribute-escaping path of the exchange format
_ORIGINS = (None, "alice", "bob-7", 'pro"ducer', "a&b<c>d", "  spaced  ")

#: values exercising text/attribute escaping on the wire
_WIRE_VALUES = ('', 'plain', 'a&b', '<tag>', '"quoted"', "it's",
                'mixed &<>"\' end', '  leading and trailing  ', '\t\n')


@st.composite
def wire_puls(draw, max_ops=6):
    """A PUL as it travels on the wire: applicable on some document,
    optionally producer-stamped parameter ids, target labels attached,
    and an origin/value mix that exercises the XML escaping paths."""
    from repro.labeling import ContainmentLabeling

    document = draw(documents())
    pul = draw(applicable_puls(document, max_ops=max_ops,
                               stamp_ids=draw(st.booleans())))
    if draw(st.booleans()):
        labeling = ContainmentLabeling().build(document)
        pul.attach_labels(labeling)
    pul.origin = draw(st.sampled_from(_ORIGINS))
    for op in pul:
        if isinstance(op, ReplaceValue) and draw(st.booleans()):
            op.value = draw(st.sampled_from(_WIRE_VALUES))
    return pul
