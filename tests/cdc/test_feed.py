"""The :class:`ChangeFeed` subscription view over a live leader."""

import threading
import time

import pytest

from repro.cdc import ChangeFeed, decode_token, encode_token
from repro.errors import ResumeExpiredError, SubscriptionLaggedError
from repro.store import DocumentStore

DOC = "<doc><items/></doc>"


def make_leader(tmp_path, name="wal", backlog=None):
    store = DocumentStore(workers=1, backend="serial",
                          durability="log", wal_dir=str(tmp_path / name))
    store.enable_replication(backlog=backlog)
    return store


def flush_insert(store, doc_id="d1", client="c1"):
    store.submit_xquery(doc_id, 'insert node <x/> as last into '
                                '/doc/items', client=client)
    store.flush(doc_id)


class TestReads:
    def test_history_reads_from_the_anchor(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("d1", DOC)
            flush_insert(store)
            page = feed.read(from_token=anchor)
            assert [e["kind"] for e in page["events"]] == \
                ["open", "batch"]
            assert [e["seq"] for e in page["events"]] == [0, 1]
            # the page token resumes past everything scanned
            assert decode_token(page["token"])[1] == page["end_seq"]

    def test_no_token_means_live_tail_only(self, tmp_path):
        with make_leader(tmp_path) as store:
            store.open("d1", DOC)
            flush_insert(store)
            feed = ChangeFeed(store.replication)
            page = feed.read()          # anchored at the live end
            assert page["events"] == []
            flush_insert(store)
            page = feed.read(from_token=page["token"])
            assert [e["kind"] for e in page["events"]] == ["batch"]

    def test_decoded_batch_events_carry_versions_and_ops(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("d1", DOC)
            flush_insert(store, client="alice")
            events = feed.read(from_token=anchor)["events"]
            open_event, batch = events
            assert open_event["doc_id"] == "d1"
            assert open_event["version"] == 0
            assert batch["version"] == 1
            assert batch["clients"] == 1      # producer count, not names
            assert batch["pul"].startswith("<")
            assert len(batch["ops"]) == 1
            assert batch["ops"][0].startswith("ins")

    def test_raw_events_carry_the_untransformed_record(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("d1", DOC)
            events = feed.read(from_token=anchor,
                               decode=False)["events"]
            assert events[0]["record"]["kind"] == "open"
            assert events[0]["record"]["doc"]["doc_id"] == "d1"

    def test_each_event_tokens_the_position_after_it(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("d1", DOC)
            flush_insert(store)
            flush_insert(store)
            events = feed.read(from_token=anchor)["events"]
            # checkpoint mid-poll: resuming from an event's token
            # redelivers exactly the events after it
            resumed = feed.read(from_token=events[0]["token"])["events"]
            assert [e["seq"] for e in resumed] == \
                [e["seq"] for e in events[1:]]

    def test_max_events_bounds_the_page(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("d1", DOC)
            for __ in range(4):
                flush_insert(store)
            page = feed.read(from_token=anchor, max_events=2)
            assert len(page["events"]) == 2
            rest = feed.read(from_token=page["token"])
            assert len(rest["events"]) == 3


class TestFiltering:
    def test_doc_filter_selects_and_still_acknowledges(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("a", DOC)
            store.open("b", DOC)
            flush_insert(store, "a")
            flush_insert(store, "b")
            page = feed.read(from_token=anchor, doc_ids=["b"])
            assert [(e["kind"], e["doc_id"]) for e in page["events"]] \
                == [("open", "b"), ("batch", "b")]
            # filtered-out records are acknowledged: the token covers
            # the whole scan, so the next poll is empty, not a replay
            assert feed.read(from_token=page["token"])["events"] == []

    def test_filtered_scan_loops_past_unmatched_history(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("a", DOC)
            for __ in range(5):
                flush_insert(store, "a")
            store.open("b", DOC)
            # max_events=2 bounds each inner read; the poll must keep
            # scanning past whole pages of filtered-out "a" traffic
            page = feed.read(from_token=anchor, doc_ids=["b"],
                             max_events=2)
            assert [e["doc_id"] for e in page["events"]] == ["b"]


class TestLongPoll:
    def test_wait_returns_early_on_a_matching_event(self, tmp_path):
        with make_leader(tmp_path) as store:
            store.open("d1", DOC)
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()

            def later():
                time.sleep(0.15)
                flush_insert(store)

            thread = threading.Thread(target=later)
            thread.start()
            started = time.monotonic()
            page = feed.read(from_token=anchor, wait_s=30.0)
            elapsed = time.monotonic() - started
            thread.join()
            assert [e["kind"] for e in page["events"]] == ["batch"]
            assert elapsed < 10.0

    def test_wait_times_out_empty(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            page = feed.read(wait_s=0.05)
            assert page["events"] == []


class TestFencing:
    def test_foreign_epoch_token_is_resume_expired(self, tmp_path):
        with make_leader(tmp_path) as store:
            feed = ChangeFeed(store.replication)
            stale = encode_token("deadbeef", 3)
            with pytest.raises(ResumeExpiredError) as info:
                feed.read(from_token=stale)
            assert info.value.token_stream == "deadbeef"
            assert info.value.stream == feed.stream

    def test_restart_fences_old_tokens(self, tmp_path):
        with make_leader(tmp_path) as store:
            store.open("d1", DOC)
            token = ChangeFeed(store.replication).read()["token"]
        with make_leader(tmp_path) as store:   # same WAL, new epoch
            feed = ChangeFeed(store.replication)
            with pytest.raises(ResumeExpiredError):
                feed.read(from_token=token)

    def test_trimmed_backlog_is_subscription_lagged(self, tmp_path):
        with make_leader(tmp_path, backlog=4) as store:
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("d1", DOC)
            for __ in range(12):
                flush_insert(store)
            with pytest.raises(SubscriptionLaggedError) as info:
                feed.read(from_token=anchor)
            assert info.value.first_seq > 0

    def test_named_subscribers_appear_in_stats_until_forgotten(
            self, tmp_path):
        with make_leader(tmp_path) as store:
            store.open("d1", DOC)
            feed = ChangeFeed(store.replication)
            feed.read(subscriber="mirror-1")
            assert "mirror-1" in store.replication.stats()["subscribers"]
            assert store.replication.forget_subscriber("mirror-1")
            assert "mirror-1" not in \
                store.replication.stats()["subscribers"]
            # forgetting an unknown subscriber reports False, not an error
            assert not store.replication.forget_subscriber("nobody")
