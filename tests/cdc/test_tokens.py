"""Resume tokens: opaque, checksummed, round-trip exact."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdc.tokens import decode_token, encode_token
from repro.errors import ProtocolError

# stream epochs are uuid4().hex in production, but the token format
# only requires "non-empty, no colon" — property-test that contract
streams = st.text(
    alphabet=st.characters(blacklist_characters=":",
                           blacklist_categories=("Cs",)),
    min_size=1, max_size=64)
seqs = st.integers(min_value=0, max_value=2**63 - 1)


class TestRoundTrip:
    @given(stream=streams, seq=seqs)
    def test_encode_decode_is_identity(self, stream, seq):
        assert decode_token(encode_token(stream, seq)) == (stream, seq)

    @given(stream=streams, seq=seqs)
    def test_tokens_are_strings_and_deterministic(self, stream, seq):
        token = encode_token(stream, seq)
        assert isinstance(token, str)
        assert token == encode_token(stream, seq)

    def test_known_vector_is_stable(self):
        # pin the wire format: clients persist tokens across releases
        assert encode_token("abc", 7) == "abc:7:24da9867"
        assert decode_token("abc:7:24da9867") == ("abc", 7)


class TestRejection:
    @given(stream=streams, seq=seqs)
    def test_any_single_character_corruption_is_detected(self, stream,
                                                         seq):
        token = encode_token(stream, seq)
        # flip the last checksum character; decode must refuse rather
        # than resume from a position the producer never issued
        tail = "0" if token[-1] != "0" else "1"
        with pytest.raises(ProtocolError):
            decode_token(token[:-1] + tail)

    @given(garbage=st.text(max_size=32))
    def test_garbage_never_decodes_silently(self, garbage):
        try:
            stream, seq = decode_token(garbage)
        except ProtocolError:
            return
        # the only strings that decode are genuine tokens
        assert encode_token(stream, seq) == garbage

    @pytest.mark.parametrize("bad", [
        None, 7, b"abc:7:24da9867", "", "abc", "abc:7", "abc:-1:x",
        "abc:seven:24da9867", "abc:7:ffffffff", ":7:24da9867",
        "abc:7:", "abc::24da9867",
    ])
    def test_malformed_inputs_raise_protocol_error(self, bad):
        with pytest.raises(ProtocolError):
            decode_token(bad)

    def test_encode_rejects_unusable_streams_and_seqs(self):
        for stream in ("", None, "a:b", 5):
            with pytest.raises(ProtocolError):
                encode_token(stream, 0)
        with pytest.raises(ProtocolError):
            encode_token("abc", -1)
