"""CDC end to end, over real sockets: a subscriber's mirror stays
byte-identical to the leader *and* to the stateless baseline — across
disconnects and resumes, and across a leader failover (``promote``),
where the epoch fence forces a typed re-bootstrap."""

import time

import pytest

from repro.api.client import StoreClient
from repro.cdc import DocumentMirror
from repro.cluster import ReplicaStore, ReplicaSync, parse_address
from repro.errors import ResumeExpiredError
from repro.pul.serialize import pul_to_xml
from repro.store import DocumentStore, StatelessBaseline
from repro.workloads import generate_client_batches, generate_xmark
from repro.xdm.serializer import serialize
from tests.cluster.harness import ServerThread


def make_leader_store(tmp_path, name="leader-wal"):
    store = DocumentStore(workers=1, backend="serial",
                          durability="log", wal_dir=str(tmp_path / name))
    store.enable_replication()
    return store


def connect(node):
    host, port = parse_address(node.address)
    return StoreClient.connect(host=host, port=port)


def drain(client, mirror, token, **kwargs):
    """Poll raw pages until the feed is dry; returns the next token."""
    while True:
        page = client.subscribe_once(from_token=token, decode=False,
                                     **kwargs)
        token = page["token"]
        if not page["events"]:
            return token
        mirror.apply_all(page["events"])


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture()
def workload():
    document = generate_xmark(scale=0.01, seed=3)
    batches, expected = generate_client_batches(
        document, clients=3, rounds=4, ops_per_round=10, seed=1)
    return serialize(document), batches, serialize(expected)


class TestMirrorIdentity:
    def test_subscriber_matches_leader_and_baseline(self, tmp_path,
                                                    workload):
        text, batches, expected = workload
        baseline = StatelessBaseline(measure_parse=False)
        with make_leader_store(tmp_path) as store, \
                ServerThread(store) as node, connect(node) as client:
            token = client.subscribe_once()["token"]    # live anchor
            mirror = DocumentMirror()
            client.open("d", text)
            baseline.open("d", text)
            for submissions in batches:
                for producer, pul in submissions:
                    client.submit("d", pul_to_xml(pul), client=producer)
                    baseline.submit("d", pul.copy(), client=producer)
                client.flush("d")
                baseline.flush("d")
                # drain after every flush: the mirror tracks the
                # leader batch by batch, not only at the end
                token = drain(client, mirror, token)
                assert mirror.text("d") == baseline.text("d")
            assert mirror.text("d") == client.text("d")["text"]
            assert mirror.text("d") == expected

    def test_disconnect_and_resume_from_the_persisted_token(
            self, tmp_path, workload):
        text, batches, expected = workload
        with make_leader_store(tmp_path) as store, \
                ServerThread(store) as node:
            mirror = DocumentMirror()
            with connect(node) as client:
                token = client.subscribe_once()["token"]
                client.open("d", text)
                for producer, pul in batches[0]:
                    client.submit("d", pul_to_xml(pul), client=producer)
                client.flush("d")
                token = drain(client, mirror, token)
            # the subscriber process "dies"; only the token survives.
            # the leader keeps writing while nobody is listening
            with connect(node) as client:
                for submissions in batches[1:]:
                    for producer, pul in submissions:
                        client.submit("d", pul_to_xml(pul),
                                      client=producer)
                    client.flush("d")
            with connect(node) as client:
                drain(client, mirror, token)
                assert mirror.text("d") == client.text("d")["text"]
                assert mirror.text("d") == expected

    def test_streaming_generator_surface(self, tmp_path):
        doc = "<doc><items/></doc>"
        with make_leader_store(tmp_path) as store, \
                ServerThread(store) as node, connect(node) as client:
            anchor = client.subscribe_once()["token"]
            client.open("d", doc)
            client.submit_xquery(
                "d", 'insert node <x/> as last into /doc/items')
            client.flush("d")
            events = []
            for event in client.subscribe(from_token=anchor,
                                          wait_s=0.1):
                events.append(event)
                if len(events) == 2:
                    break
            assert [e["kind"] for e in events] == ["open", "batch"]


class TestFailover:
    def test_promote_fences_tokens_and_rebootstrap_converges(
            self, tmp_path, workload):
        text, batches, expected = workload
        leader_store = make_leader_store(tmp_path)
        leader_node = ServerThread(leader_store).start()
        replica = ReplicaStore(leader_address=leader_node.address,
                               workers=1, backend="serial",
                               durability="log",
                               wal_dir=str(tmp_path / "replica-wal"))
        sync = ReplicaSync(replica, leader_node.address, "r1",
                           wait_s=0.2).start()
        mirror = DocumentMirror()
        try:
            with ServerThread(replica) as replica_node:
                with connect(leader_node) as client:
                    token = client.subscribe_once()["token"]
                    client.open("d", text)
                    for producer, pul in batches[0]:
                        client.submit("d", pul_to_xml(pul),
                                      client=producer)
                    client.flush("d")
                    token = drain(client, mirror, token)
                    leader_seq = leader_store.replication.next_seq
                assert wait_until(
                    lambda: replica.applied_seq == leader_seq)
                sync.stop()
                leader_node.stop()           # the leader is gone
                with connect(replica_node) as client:
                    client.promote()
                    # the old epoch's token is fenced, loudly
                    with pytest.raises(ResumeExpiredError):
                        client.subscribe_once(from_token=token)
                    # re-bootstrap: a state-form export carries the
                    # paired resume token of the new epoch
                    page = client.export(format="state")
                    assert page["done"]
                    mirror.bootstrap(page["docs"])
                    token = page["token"]
                    # the new leader keeps writing; the mirror follows
                    baseline = StatelessBaseline(measure_parse=False)
                    baseline.open("d", text)
                    for submissions in batches:
                        for producer, pul in submissions:
                            baseline.submit("d", pul.copy(),
                                            client=producer)
                        baseline.flush("d")
                    for submissions in batches[1:]:
                        for producer, pul in submissions:
                            client.submit("d", pul_to_xml(pul),
                                          client=producer)
                        client.flush("d")
                    token = drain(client, mirror, token)
                    assert mirror.text("d") == client.text("d")["text"]
                    assert mirror.text("d") == baseline.text("d")
                    assert mirror.text("d") == expected
        finally:
            sync.stop()
            leader_node.stop()
