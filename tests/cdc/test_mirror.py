""":class:`DocumentMirror`: byte-faithful replay, idempotent under
at-least-once redelivery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdc import ChangeFeed, DocumentMirror
from repro.errors import ClusterError
from repro.index import build_index
from repro.store import DocumentStore
from repro.xdm.node import Node

DOC = "<doc><items/><meta/></doc>"


def _label_codes(document, labeling):
    """Digit-exact label timeline of one tree: id -> (start, end)."""
    return {node.node_id: (labeling.label_of(node.node_id).start,
                           labeling.label_of(node.node_id).end)
            for node in document.nodes()}


EDITS = (
    'insert node <x/> as last into /doc/items',
    'insert node <y a="1"/> as first into /doc/items',
    'delete nodes /doc/items/*[1]',
    'replace value of node /doc/meta with "m"',
    'rename node /doc/meta as "info"',
)


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    """A real leader session captured as raw events + expected bytes."""
    wal = tmp_path_factory.mktemp("mirror") / "wal"
    with DocumentStore(workers=1, backend="serial", durability="log",
                       wal_dir=str(wal)) as store:
        store.enable_replication()
        feed = ChangeFeed(store.replication)
        anchor = feed.tail_token()
        store.open("a", DOC)
        store.open("b", DOC)
        store.open("gone", DOC)
        for round_index in range(4):
            for doc_id in ("a", "b"):
                expr = EDITS[round_index % len(EDITS)]
                store.submit_xquery(doc_id, expr,
                                    client="c{}".format(round_index))
                store.flush(doc_id)
        store.close_document("gone")
        events = feed.read(from_token=anchor, decode=False,
                           max_events=500)["events"]
        expected = {doc_id: store.text(doc_id) for doc_id in ("a", "b")}
        # the leader's final indexes/label codes, captured while the
        # store is open (plain tuples — safe to compare after close)
        leader = {}
        for doc_id in ("a", "b"):
            version = store._entries[doc_id].published
            leader[doc_id] = (version.index,
                              _label_codes(version.document,
                                           version.labeling))
        return events, expected, leader


class TestReplay:
    def test_in_order_replay_is_byte_identical(self, trace):
        events, expected, __ = trace
        mirror = DocumentMirror()
        mirror.apply_all(events)
        assert mirror.doc_ids() == sorted(expected)
        for doc_id, text in expected.items():
            assert mirror.text(doc_id) == text

    def test_exact_duplicate_replay_is_absorbed(self, trace):
        events, expected, __ = trace
        mirror = DocumentMirror()
        assert mirror.apply_all(events) > 0
        # a full second delivery converges to the same bytes; only the
        # closed document's open/close pair re-applies (and re-absorbs)
        reapplied = mirror.apply_all(events)
        assert reapplied <= 2
        for doc_id, text in expected.items():
            assert mirror.text(doc_id) == text
        assert "gone" not in mirror.doc_ids()

    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_any_at_least_once_redelivery_converges(self, trace, data):
        """Deliver the trace with random rewinds — a subscriber that
        loses its token re-receives a suffix it already applied. Any
        such schedule must converge to the same bytes."""
        events, expected, __ = trace
        mirror = DocumentMirror()
        position = 0
        steps = 0
        while position < len(events):
            mirror.apply(events[position])
            position += 1
            steps += 1
            if position < len(events) and steps < 200 and \
                    data.draw(st.booleans(), label="rewind?"):
                position = data.draw(
                    st.integers(min_value=0, max_value=position),
                    label="rewind to")
        for doc_id, text in expected.items():
            assert mirror.text(doc_id) == text
        assert "gone" not in mirror.doc_ids()


class TestGuards:
    def test_batch_without_base_state_is_typed(self, trace):
        events, __, __ = trace
        batch = next(e for e in events
                     if e["record"]["kind"] == "batch")
        with pytest.raises(ClusterError) as info:
            DocumentMirror().apply(batch)
        assert "bootstrap" in str(info.value)

    def test_version_gap_is_typed(self, trace):
        events, __, __ = trace
        mirror = DocumentMirror()
        batches = [e for e in events
                   if e["record"]["kind"] == "batch"
                   and e["record"]["doc_id"] == "a"]
        opens = [e for e in events
                 if e["record"]["kind"] == "open"
                 and e["record"]["doc"]["doc_id"] == "a"]
        mirror.apply(opens[0])
        with pytest.raises(ClusterError) as info:
            mirror.apply(batches[-1])        # skips versions 1..n-1
        assert "gap" in str(info.value)

    def test_internal_records_never_change_state(self):
        mirror = DocumentMirror()
        assert not mirror.apply({"kind": "relabel", "doc_id": "a"})
        assert not mirror.apply({"kind": "repl-pos", "pos": 9})

    def test_unknown_kind_is_refused(self):
        with pytest.raises(ClusterError):
            DocumentMirror().apply({"kind": "mystery"})

    def test_reading_an_absent_document_is_typed(self):
        mirror = DocumentMirror()
        with pytest.raises(ClusterError):
            mirror.text("nope")
        assert mirror.version("nope") is None


class TestBootstrap:
    def test_bootstrap_pairs_with_export_state_form(self, tmp_path):
        with DocumentStore(workers=1, backend="serial",
                           durability="log",
                           wal_dir=str(tmp_path / "wal")) as store:
            store.enable_replication()
            store.open("a", DOC)
            store.submit_xquery(
                "a", 'insert node <x/> as last into /doc/items')
            store.flush("a")
            page = store.export_state(form="state")
            mirror = DocumentMirror()
            mirror.bootstrap(page["docs"])
            assert mirror.text("a") == store.text("a")
            assert mirror.version("a") == 1
            # resuming from the paired position redelivers at most
            # what the payloads already contain — absorbed, not reapplied
            feed = ChangeFeed(store.replication)
            replay = feed.read(
                from_token=None, decode=False, max_events=500)
            assert replay["events"] == []     # paired seq was the tail


class TestIndexParity:
    """Index mode: the mirror maintains the leader's labeling and
    secondary index from the stream alone."""

    def _replayed(self, events):
        mirror = DocumentMirror(index=True)
        mirror.apply_all(events)
        return mirror

    def test_in_order_replay_reproduces_the_leader_index(self, trace):
        events, expected, leader = trace
        mirror = self._replayed(events)
        for doc_id, text in expected.items():
            assert mirror.text(doc_id) == text
            leader_index, leader_codes = leader[doc_id]
            maintained = mirror.index(doc_id)
            # streamed maintenance == the leader's maintained index
            # == a from-scratch rebuild over the mirror's own tree
            assert maintained == leader_index
            assert maintained == build_index(mirror._docs[doc_id],
                                             mirror.labeling(doc_id))
            # and the label timeline is digit-identical, not just
            # order-isomorphic — the leader's exact codes, replayed
            assert _label_codes(mirror._docs[doc_id],
                                mirror.labeling(doc_id)) == leader_codes

    @settings(deadline=None, max_examples=15)
    @given(data=st.data())
    def test_redelivery_converges_to_the_same_index(self, trace, data):
        events, expected, leader = trace
        mirror = DocumentMirror(index=True)
        position = 0
        steps = 0
        while position < len(events):
            mirror.apply(events[position])
            position += 1
            steps += 1
            if position < len(events) and steps < 200 and \
                    data.draw(st.booleans(), label="rewind?"):
                position = data.draw(
                    st.integers(min_value=0, max_value=position),
                    label="rewind to")
        for doc_id in expected:
            assert mirror.index(doc_id) == leader[doc_id][0]

    def test_mirror_queries_serve_from_the_maintained_index(self, trace):
        events, __, __ = trace
        mirror = self._replayed(events)
        for query in ("//x", "/doc/items/*", "//@a", "//info"):
            walked = mirror.query("a", query, engine="walk")
            served = mirror.query("a", query, engine="index")
            assert walked["nodes"] == served["nodes"]
        assert mirror.query("a", "//x")["version"] == \
            mirror.version("a")

    def test_close_drops_the_maintained_index(self, trace):
        events, __, __ = trace
        mirror = self._replayed(events)
        assert mirror.index("a") is not None
        mirror.apply({"kind": "close", "doc_id": "a"})
        assert mirror.index("a") is None
        assert mirror.labeling("a") is None


class TestIndexParityAcrossRelabels:
    """A tight-headroom leader emits ``relabel`` records mid-stream;
    a mirror configured with the producer's budget stays digit- and
    index-identical across them."""

    HEADROOM = 8

    @pytest.fixture(scope="class")
    def tight_trace(self, tmp_path_factory):
        wal = tmp_path_factory.mktemp("mirror-tight") / "wal"
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=str(wal),
                           max_code_length=self.HEADROOM) as store:
            store.enable_replication()
            feed = ChangeFeed(store.replication)
            anchor = feed.tail_token()
            store.open("a", DOC)
            for __ in range(6):
                store.submit_xquery(
                    "a",
                    'insert node <x k0="v"/> as first into /doc/items')
                store.flush("a")
            # a failing batch (duplicate attribute) makes the leader
            # republish with rebuilt labels and log a ``relabel``
            # record — the wholesale-relabel arm of the stream
            from repro.pul.ops import InsertAttributes
            from repro.pul.pul import PUL
            from repro.errors import ReproError

            items = next(n.node_id for n in
                         store._entries["a"].published.document.nodes()
                         if n.is_element and n.name == "items")
            for serial in (9001, 9002):
                attr = Node.attribute("dup", "w", node_id=serial)
                store.submit("a", PUL([InsertAttributes(items,
                                                        [attr])]))
                try:
                    store.flush("a")
                except ReproError:
                    store.discard_pending("a")
            store.submit_xquery(
                "a", 'insert node <y/> as last into /doc/items')
            store.flush("a")
            events = feed.read(from_token=anchor, decode=False,
                               max_events=500)["events"]
            version = store._entries["a"].published
            return (events, store.text("a"), version.index,
                    _label_codes(version.document, version.labeling))

    def test_stream_carries_relabel_records(self, tight_trace):
        events, __, __, __ = tight_trace
        kinds = {e["record"]["kind"] for e in events}
        assert "relabel" in kinds

    def test_parity_across_full_relabel_boundaries(self, tight_trace):
        events, text, leader_index, leader_codes = tight_trace
        mirror = DocumentMirror(index=True,
                                max_code_length=self.HEADROOM)
        mirror.apply_all(events)
        assert mirror.text("a") == text
        assert mirror.index("a") == leader_index
        assert _label_codes(mirror._docs["a"],
                            mirror.labeling("a")) == leader_codes
