""":class:`DocumentMirror`: byte-faithful replay, idempotent under
at-least-once redelivery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdc import ChangeFeed, DocumentMirror
from repro.errors import ClusterError
from repro.store import DocumentStore

DOC = "<doc><items/><meta/></doc>"

EDITS = (
    'insert node <x/> as last into /doc/items',
    'insert node <y a="1"/> as first into /doc/items',
    'delete nodes /doc/items/*[1]',
    'replace value of node /doc/meta with "m"',
    'rename node /doc/meta as "info"',
)


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    """A real leader session captured as raw events + expected bytes."""
    wal = tmp_path_factory.mktemp("mirror") / "wal"
    with DocumentStore(workers=1, backend="serial", durability="log",
                       wal_dir=str(wal)) as store:
        store.enable_replication()
        feed = ChangeFeed(store.replication)
        anchor = feed.tail_token()
        store.open("a", DOC)
        store.open("b", DOC)
        store.open("gone", DOC)
        for round_index in range(4):
            for doc_id in ("a", "b"):
                expr = EDITS[round_index % len(EDITS)]
                store.submit_xquery(doc_id, expr,
                                    client="c{}".format(round_index))
                store.flush(doc_id)
        store.close_document("gone")
        events = feed.read(from_token=anchor, decode=False,
                           max_events=500)["events"]
        expected = {doc_id: store.text(doc_id) for doc_id in ("a", "b")}
        return events, expected


class TestReplay:
    def test_in_order_replay_is_byte_identical(self, trace):
        events, expected = trace
        mirror = DocumentMirror()
        mirror.apply_all(events)
        assert mirror.doc_ids() == sorted(expected)
        for doc_id, text in expected.items():
            assert mirror.text(doc_id) == text

    def test_exact_duplicate_replay_is_absorbed(self, trace):
        events, expected = trace
        mirror = DocumentMirror()
        assert mirror.apply_all(events) > 0
        # a full second delivery converges to the same bytes; only the
        # closed document's open/close pair re-applies (and re-absorbs)
        reapplied = mirror.apply_all(events)
        assert reapplied <= 2
        for doc_id, text in expected.items():
            assert mirror.text(doc_id) == text
        assert "gone" not in mirror.doc_ids()

    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_any_at_least_once_redelivery_converges(self, trace, data):
        """Deliver the trace with random rewinds — a subscriber that
        loses its token re-receives a suffix it already applied. Any
        such schedule must converge to the same bytes."""
        events, expected = trace
        mirror = DocumentMirror()
        position = 0
        steps = 0
        while position < len(events):
            mirror.apply(events[position])
            position += 1
            steps += 1
            if position < len(events) and steps < 200 and \
                    data.draw(st.booleans(), label="rewind?"):
                position = data.draw(
                    st.integers(min_value=0, max_value=position),
                    label="rewind to")
        for doc_id, text in expected.items():
            assert mirror.text(doc_id) == text
        assert "gone" not in mirror.doc_ids()


class TestGuards:
    def test_batch_without_base_state_is_typed(self, trace):
        events, __ = trace
        batch = next(e for e in events
                     if e["record"]["kind"] == "batch")
        with pytest.raises(ClusterError) as info:
            DocumentMirror().apply(batch)
        assert "bootstrap" in str(info.value)

    def test_version_gap_is_typed(self, trace):
        events, __ = trace
        mirror = DocumentMirror()
        batches = [e for e in events
                   if e["record"]["kind"] == "batch"
                   and e["record"]["doc_id"] == "a"]
        opens = [e for e in events
                 if e["record"]["kind"] == "open"
                 and e["record"]["doc"]["doc_id"] == "a"]
        mirror.apply(opens[0])
        with pytest.raises(ClusterError) as info:
            mirror.apply(batches[-1])        # skips versions 1..n-1
        assert "gap" in str(info.value)

    def test_internal_records_never_change_state(self):
        mirror = DocumentMirror()
        assert not mirror.apply({"kind": "relabel", "doc_id": "a"})
        assert not mirror.apply({"kind": "repl-pos", "pos": 9})

    def test_unknown_kind_is_refused(self):
        with pytest.raises(ClusterError):
            DocumentMirror().apply({"kind": "mystery"})

    def test_reading_an_absent_document_is_typed(self):
        mirror = DocumentMirror()
        with pytest.raises(ClusterError):
            mirror.text("nope")
        assert mirror.version("nope") is None


class TestBootstrap:
    def test_bootstrap_pairs_with_export_state_form(self, tmp_path):
        with DocumentStore(workers=1, backend="serial",
                           durability="log",
                           wal_dir=str(tmp_path / "wal")) as store:
            store.enable_replication()
            store.open("a", DOC)
            store.submit_xquery(
                "a", 'insert node <x/> as last into /doc/items')
            store.flush("a")
            page = store.export_state(form="state")
            mirror = DocumentMirror()
            mirror.bootstrap(page["docs"])
            assert mirror.text("a") == store.text("a")
            assert mirror.version("a") == 1
            # resuming from the paired position redelivers at most
            # what the payloads already contain — absorbed, not reapplied
            feed = ChangeFeed(store.replication)
            replay = feed.read(
                from_token=None, decode=False, max_events=500)
            assert replay["events"] == []     # paired seq was the tail
