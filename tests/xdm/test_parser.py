"""Unit and property tests for the XML parser."""

import pytest
from hypothesis import given, settings

from repro.errors import XMLSyntaxError
from repro.xdm import parse_document, serialize
from repro.xdm.parser import parse_forest, parse_fragment

from tests.strategies import documents


class TestBasics:
    def test_simple_element(self):
        doc = parse_document("<a/>")
        assert doc.root.name == "a"
        assert doc.root.children == []

    def test_nested(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert doc.root.children[0].children[0].name == "c"

    def test_text_content(self):
        doc = parse_document("<a>hello</a>")
        assert doc.root.children[0].value == "hello"

    def test_mixed_content(self):
        doc = parse_document("<a>x<b/>y</a>")
        kinds = [c.is_text for c in doc.root.children]
        assert kinds == [True, False, True]

    def test_attributes_both_quotes(self):
        doc = parse_document("""<a x="1" y='2'/>""")
        assert {(a.name, a.value) for a in doc.root.attributes} == \
            {("x", "1"), ("y", "2")}

    def test_whitespace_only_text_dropped_by_default(self):
        doc = parse_document("<a>\n  <b/>\n</a>")
        assert [c.name for c in doc.root.children] == ["b"]

    def test_whitespace_kept_on_request(self):
        doc = parse_document("<a> <b/> </a>", keep_whitespace=True)
        assert len(doc.root.children) == 3

    def test_names_with_punctuation(self):
        doc = parse_document("<ns:a-b.c_d/>")
        assert doc.root.name == "ns:a-b.c_d"


class TestEntitiesAndSections:
    def test_predefined_entities(self):
        doc = parse_document("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert doc.root.children[0].value == "<&>\"'"

    def test_numeric_references(self):
        doc = parse_document("<a>&#65;&#x42;</a>")
        assert doc.root.children[0].value == "AB"

    def test_entity_in_attribute(self):
        doc = parse_document("<a k='&amp;x'/>")
        assert doc.root.attributes[0].value == "&x"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<not-a-tag>]]></a>")
        assert doc.root.children[0].value == "<not-a-tag>"

    def test_comments_skipped(self):
        doc = parse_document("<a><!-- note --><b/></a>")
        assert [c.name for c in doc.root.children] == ["b"]

    def test_processing_instruction_skipped(self):
        doc = parse_document("<a><?pi data?><b/></a>")
        assert [c.name for c in doc.root.children] == ["b"]

    def test_prolog_and_doctype(self):
        doc = parse_document(
            "<?xml version='1.0'?><!DOCTYPE a><a/>")
        assert doc.root.name == "a"


class TestErrors:
    @pytest.mark.parametrize("text", [
        "",
        "<a>",
        "<a></b>",
        "<a",
        "<a x=1/>",
        "<a x='1' x='2'/>",
        "<a>&unknown;</a>",
        "<a/><b/>",
        "<a><b></a></b>",
        "<a>&#xZZ;</a>",
        "<!-- unterminated <a/>",
    ])
    def test_malformed(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_document(text)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as info:
            parse_document("<a><b></c></a>")
        assert info.value.position is not None


class TestForest:
    def test_multiple_roots(self):
        trees = parse_forest("<a/><b>x</b>text")
        assert [t.name or t.value for t in trees] == ["a", "b", "text"]
        assert all(t.parent is None for t in trees)

    def test_empty_forest(self):
        assert parse_forest("") == []

    def test_fragment_single_element_only(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragment("<a/><b/>")


class TestRoundtrip:
    def test_simple_roundtrip(self):
        text = '<a x="1"><b>hi &amp; bye</b><c/></a>'
        assert serialize(parse_document(text)) == text

    @settings(max_examples=50, deadline=None)
    @given(documents())
    def test_random_roundtrip(self, document):
        text = serialize(document)
        reparsed = parse_document(text, keep_whitespace=True)
        assert serialize(reparsed) == text
