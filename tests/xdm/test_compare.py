"""Unit tests for structural comparison."""

from repro.xdm import parse_document
from repro.xdm.compare import (
    canonical_string,
    documents_equal,
    forests_equal,
    nodes_equal,
)
from repro.xdm.parser import parse_forest


class TestValueEquality:
    def test_equal_documents(self):
        a = parse_document("<a x='1'><b>t</b></a>")
        b = parse_document("<a x='1'><b>t</b></a>")
        assert documents_equal(a, b)

    def test_attribute_order_irrelevant(self):
        a = parse_document("<a x='1' y='2'/>")
        b = parse_document("<a y='2' x='1'/>")
        assert documents_equal(a, b)

    def test_child_order_relevant(self):
        a = parse_document("<a><b/><c/></a>")
        b = parse_document("<a><c/><b/></a>")
        assert not documents_equal(a, b)

    def test_text_differs(self):
        a = parse_document("<a>x</a>")
        b = parse_document("<a>y</a>")
        assert not documents_equal(a, b)

    def test_forests(self):
        f1 = parse_forest("<a/><b/>")
        f2 = parse_forest("<a/><b/>")
        f3 = parse_forest("<a/>")
        assert forests_equal(f1, f2)
        assert not forests_equal(f1, f3)


class TestIdentityEquality:
    def test_same_values_different_ids(self):
        a = parse_document("<a><b/></a>")
        b = parse_document("<a><b/></a>")
        b.root.children[0].node_id = 99
        assert nodes_equal(a.root, b.root)
        assert not nodes_equal(a.root, b.root, with_ids=True)

    def test_canonical_string_is_stable_key(self):
        a = parse_document("<a x='1' y='2'><b>t</b></a>")
        b = parse_document("<a y='2' x='1'><b>t</b></a>")
        assert canonical_string(a.root) == canonical_string(b.root)

    def test_canonical_string_distinguishes_types(self):
        elem = parse_document("<a><b/></a>")
        text = parse_document("<a>b</a>")
        assert canonical_string(elem.root) != canonical_string(text.root)
