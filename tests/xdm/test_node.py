"""Unit tests for the node model."""

import pytest

from repro.errors import DocumentError
from repro.xdm.node import Node, NodeType


class TestConstruction:
    def test_element(self):
        node = Node.element("a")
        assert node.is_element
        assert node.name == "a"
        assert node.value is None

    def test_text(self):
        node = Node.text("hello")
        assert node.is_text
        assert node.value == "hello"
        assert node.name is None

    def test_attribute(self):
        node = Node.attribute("k", "v")
        assert node.is_attribute
        assert (node.name, node.value) == ("k", "v")

    def test_element_requires_name(self):
        with pytest.raises(DocumentError):
            Node(NodeType.ELEMENT)

    def test_element_refuses_value(self):
        with pytest.raises(DocumentError):
            Node(NodeType.ELEMENT, name="a", value="v")

    def test_text_refuses_name(self):
        with pytest.raises(DocumentError):
            Node(NodeType.TEXT, name="a")

    def test_type_codes(self):
        assert NodeType.from_code("e") is NodeType.ELEMENT
        assert NodeType.from_code("a") is NodeType.ATTRIBUTE
        assert NodeType.from_code("t") is NodeType.TEXT
        with pytest.raises(DocumentError):
            NodeType.from_code("x")


class TestStructure:
    def test_append_child_sets_parent(self):
        parent = Node.element("a")
        child = parent.append_child(Node.element("b"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_insert_child_position(self):
        parent = Node.element("a")
        first = parent.append_child(Node.element("b"))
        second = parent.insert_child(0, Node.element("c"))
        assert parent.children == [second, first]

    def test_text_child(self):
        parent = Node.element("a")
        parent.append_child(Node.text("x"))
        assert parent.children[0].is_text

    def test_attributes_are_separate(self):
        parent = Node.element("a")
        attr = parent.append_attribute(Node.attribute("k", "v"))
        assert parent.attributes == [attr]
        assert parent.children == []

    def test_attribute_cannot_be_child(self):
        parent = Node.element("a")
        with pytest.raises(DocumentError):
            parent.append_child(Node.attribute("k", "v"))

    def test_element_cannot_be_attribute(self):
        parent = Node.element("a")
        with pytest.raises(DocumentError):
            parent.append_attribute(Node.element("b"))

    def test_text_holds_no_children(self):
        text = Node.text("x")
        with pytest.raises(DocumentError):
            text.append_child(Node.element("b"))

    def test_detach(self):
        parent = Node.element("a")
        child = parent.append_child(Node.element("b"))
        child.detach()
        assert child.parent is None
        assert parent.children == []

    def test_detach_attribute(self):
        parent = Node.element("a")
        attr = parent.append_attribute(Node.attribute("k", "v"))
        attr.detach()
        assert parent.attributes == []

    def test_detach_detached_is_noop(self):
        node = Node.element("a")
        assert node.detach() is node

    def test_child_index(self):
        parent = Node.element("a")
        parent.append_child(Node.element("b"))
        second = parent.append_child(Node.element("c"))
        assert second.child_index() == 1

    def test_child_index_on_detached_raises(self):
        with pytest.raises(DocumentError):
            Node.element("a").child_index()


class TestTraversal:
    def _tree(self):
        root = Node.element("r")
        root.append_attribute(Node.attribute("k", "v"))
        a = root.append_child(Node.element("a"))
        a.append_child(Node.text("t1"))
        root.append_child(Node.element("b"))
        return root

    def test_iter_subtree_document_order(self):
        root = self._tree()
        kinds = [(n.node_type.value, n.name or n.value)
                 for n in root.iter_subtree()]
        assert kinds == [("e", "r"), ("a", "k"), ("e", "a"), ("t", "t1"),
                         ("e", "b")]

    def test_iter_subtree_without_attributes(self):
        root = self._tree()
        names = [n.name or n.value
                 for n in root.iter_subtree(include_attributes=False)]
        assert names == ["r", "a", "t1", "b"]

    def test_descendants_excludes_self(self):
        root = self._tree()
        assert root not in list(root.descendants())

    def test_ancestors(self):
        root = self._tree()
        leaf = root.children[0].children[0]
        assert [n.name for n in leaf.ancestors()] == ["a", "r"]

    def test_string_value(self):
        root = self._tree()
        assert root.string_value() == "t1"
        assert root.attributes[0].string_value() == "v"


class TestDeepCopy:
    def test_copy_is_detached_and_equal_shape(self):
        root = Node.element("a")
        root.append_attribute(Node.attribute("k", "v"))
        root.append_child(Node.text("x"))
        copy = root.deep_copy()
        assert copy is not root
        assert copy.parent is None
        assert copy.attributes[0].value == "v"
        assert copy.children[0].value == "x"

    def test_copy_drops_ids_by_default(self):
        root = Node.element("a", node_id=7)
        assert root.deep_copy().node_id is None

    def test_copy_keeps_ids_on_request(self):
        root = Node.element("a", node_id=7)
        assert root.deep_copy(keep_ids=True).node_id == 7

    def test_copy_does_not_alias(self):
        root = Node.element("a")
        child = root.append_child(Node.element("b"))
        copy = root.deep_copy()
        child.name = "changed"
        assert copy.children[0].name == "b"
