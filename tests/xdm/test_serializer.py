"""Unit tests for the serializer."""

import pytest

from repro.errors import DocumentError
from repro.xdm import parse_document, serialize, serialize_node
from repro.xdm.document import Document
from repro.xdm.node import Node
from repro.xdm.serializer import (
    escape_attribute,
    escape_text,
    serialize_forest,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("<a> & </a>") == "&lt;a&gt; &amp; &lt;/a&gt;"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('a"b&c<d') == "a&quot;b&amp;c&lt;d"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(parse_document("<a></a>")) == "<a/>"

    def test_attributes(self):
        assert serialize(parse_document('<a k="v"/>')) == '<a k="v"/>'

    def test_with_ids(self, small_doc):
        text = serialize(small_doc, with_ids=True)
        assert 'repro:id="0"' in text

    def test_with_labels(self, small_doc):
        labels = {0: "LBL"}
        text = serialize(small_doc, labels=labels)
        assert 'repro:label="LBL"' in text

    def test_declaration(self, small_doc):
        text = serialize(small_doc, declaration=True)
        assert text.startswith("<?xml")

    def test_indent(self):
        doc = parse_document("<a><b><c/></b></a>")
        text = serialize(doc, indent="  ")
        assert "\n  <b>" in text

    def test_indented_text_only_element_stays_inline(self):
        doc = parse_document("<a><b>text</b></a>")
        text = serialize(doc, indent="  ")
        assert "<b>text</b>" in text

    def test_empty_document_raises(self):
        with pytest.raises(DocumentError):
            serialize(Document())

    def test_bare_attribute_renders_literal(self):
        attr = Node.attribute("k", 'v"w')
        assert serialize_node(attr) == 'k="v&quot;w"'

    def test_forest(self):
        trees = [Node.element("a"), Node.text("x & y")]
        assert serialize_forest(trees) == "<a/>x &amp; y"

    def test_roundtrip_preserves_entities(self):
        text = "<a>&amp;&lt;</a>"
        assert serialize(parse_document(text)) == text
