"""Unit tests for the document abstraction and id discipline."""

import pytest

from repro.errors import DocumentError, UnknownNodeError
from repro.xdm.document import Document, IdAllocator
from repro.xdm.node import Node


class TestIdAllocator:
    def test_sequential(self):
        allocator = IdAllocator()
        assert [allocator.allocate() for __ in range(3)] == [0, 1, 2]

    def test_strided_spaces_disjoint(self):
        a = IdAllocator(start=0, stride=3)
        b = IdAllocator(start=1, stride=3)
        c = IdAllocator(start=2, stride=3)
        drawn = {alloc.allocate() for alloc in (a, b, c) for __ in range(5)}
        assert len(drawn) == 15  # interleaved allocation never collides
        ids_a = {a.allocate() for __ in range(50)}
        ids_b = {b.allocate() for __ in range(50)}
        assert not ids_a & ids_b

    def test_reserve_at_least_respects_stride(self):
        allocator = IdAllocator(start=1, stride=3)
        allocator.reserve_at_least(10)
        value = allocator.allocate()
        assert value >= 10
        assert value % 3 == 1

    def test_reserve_large_floor_is_fast(self):
        allocator = IdAllocator()
        allocator.reserve_at_least(10 ** 12)
        assert allocator.allocate() == 10 ** 12

    def test_invalid_stride(self):
        with pytest.raises(DocumentError):
            IdAllocator(stride=0)


class TestDocument:
    def test_ids_assigned_in_document_order(self, small_doc):
        kinds = [(n.node_id, n.node_type.value) for n in small_doc.nodes()]
        assert [node_id for node_id, __ in kinds] == list(range(len(kinds)))

    def test_get_and_find(self, small_doc):
        assert small_doc.get(0).name == "a"
        assert small_doc.find(999) is None
        with pytest.raises(UnknownNodeError):
            small_doc.get(999)

    def test_contains_and_len(self, small_doc):
        assert 0 in small_doc
        assert len(small_doc) == len(list(small_doc.nodes()))

    def test_root_must_be_element(self):
        with pytest.raises(DocumentError):
            Document(root=Node.text("x"))

    def test_two_roots_rejected(self, small_doc):
        with pytest.raises(DocumentError):
            small_doc.set_root(Node.element("again"))

    def test_ids_never_reused_after_detach(self, small_doc):
        node = small_doc.get(2)
        small_doc.detach_node(node)
        assert 2 not in small_doc
        fresh = small_doc.fresh_id()
        assert fresh != 2
        assert fresh > max(small_doc.node_ids())

    def test_insert_children_registers(self, small_doc):
        parent = small_doc.get(0)
        tree = Node.element("new")
        small_doc.insert_children(parent, 0, [tree])
        assert tree.node_id in small_doc
        assert parent.children[0] is tree

    def test_replace_node(self, small_doc):
        target = small_doc.get(2)  # <b>
        replacement = Node.element("z")
        small_doc.replace_node(target, [replacement])
        assert 2 not in small_doc
        assert replacement.node_id in small_doc
        assert small_doc.get(0).children[0] is replacement

    def test_replace_attribute(self, small_doc):
        attr = small_doc.get(1)
        assert attr.is_attribute
        new_attr = Node.attribute("y", "2")
        small_doc.replace_node(attr, [new_attr])
        assert small_doc.get(0).attributes == [new_attr]

    def test_copy_preserves_ids_and_is_independent(self, small_doc):
        clone = small_doc.copy()
        assert {n.node_id for n in clone.nodes()} == \
            {n.node_id for n in small_doc.nodes()}
        clone.get(0).name = "mutated"
        assert small_doc.get(0).name == "a"

    def test_copy_allocator_continues(self, small_doc):
        clone = small_doc.copy()
        assert clone.fresh_id() >= len(small_doc)

    def test_rebuild_index_assigns_fresh_in_doc_order(self, small_doc):
        parent = small_doc.get(0)
        first = Node.element("p")
        last = Node.element("q")
        parent.insert_child(0, first)
        parent.append_child(last)
        small_doc.rebuild_index()
        assert first.node_id < last.node_id
        assert first.node_id >= len(list(small_doc.nodes())) - 2

    def test_rebuild_index_drops_unreachable(self, small_doc):
        node = small_doc.get(2)
        node.detach()
        small_doc.rebuild_index()
        assert 2 not in small_doc

    def test_rebuild_index_rejects_duplicates(self, small_doc):
        dup = Node.element("dup", node_id=0)
        small_doc.get(0).append_child(dup)
        with pytest.raises(DocumentError):
            small_doc.rebuild_index()

    def test_elements_by_name(self, small_doc):
        assert [n.node_id for n in small_doc.elements_by_name("c")] == [4]

    def test_max_id(self, small_doc):
        assert small_doc.max_id() == max(small_doc.node_ids())

    def test_empty_document(self):
        document = Document()
        assert len(document) == 0
        assert list(document.nodes()) == []
