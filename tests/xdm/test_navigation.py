"""Unit tests for tree navigation (the test oracle for label predicates)."""

from repro.xdm.navigation import (
    compare_document_order,
    depth,
    document_position,
    is_ancestor,
    is_attribute_of,
    is_first_child,
    is_last_child,
    is_left_sibling,
    is_parent,
    left_sibling,
    precedes,
    right_sibling,
)


def nodes_by_id(document):
    return {n.node_id: n for n in document.nodes()}


class TestOrder:
    def test_document_order_matches_ids(self, small_doc):
        ordered = sorted(small_doc.nodes(),
                         key=document_position)
        assert [n.node_id for n in ordered] == \
            sorted(n.node_id for n in small_doc.nodes())

    def test_precedes(self, small_doc):
        nodes = nodes_by_id(small_doc)
        assert precedes(nodes[0], nodes[2])
        assert not precedes(nodes[2], nodes[0])
        assert compare_document_order(nodes[3], nodes[3]) == 0

    def test_attribute_sorts_after_owner_before_children(self, small_doc):
        nodes = nodes_by_id(small_doc)
        # 5=<d>, 6=@k, 7='tail'
        assert precedes(nodes[5], nodes[6])
        assert precedes(nodes[6], nodes[7])


class TestAxes:
    def test_parent_child(self, small_doc):
        nodes = nodes_by_id(small_doc)
        assert is_parent(nodes[0], nodes[2])
        assert not is_parent(nodes[0], nodes[3])
        assert not is_parent(nodes[0], nodes[1])  # attribute

    def test_ancestor(self, small_doc):
        nodes = nodes_by_id(small_doc)
        assert is_ancestor(nodes[0], nodes[3])
        assert is_ancestor(nodes[0], nodes[1])
        assert not is_ancestor(nodes[3], nodes[0])

    def test_attribute_of(self, small_doc):
        nodes = nodes_by_id(small_doc)
        assert is_attribute_of(nodes[1], nodes[0])
        assert not is_attribute_of(nodes[2], nodes[0])

    def test_siblings(self, small_doc):
        nodes = nodes_by_id(small_doc)
        assert left_sibling(nodes[4]) is nodes[2]
        assert right_sibling(nodes[4]) is nodes[5]
        assert left_sibling(nodes[2]) is None
        assert right_sibling(nodes[5]) is None
        assert is_left_sibling(nodes[2], nodes[4])
        assert not is_left_sibling(nodes[4], nodes[2])

    def test_first_last_child(self, small_doc):
        nodes = nodes_by_id(small_doc)
        assert is_first_child(nodes[2])
        assert is_last_child(nodes[5])
        assert not is_first_child(nodes[4])
        assert not is_last_child(nodes[4])

    def test_root_has_no_siblings(self, small_doc):
        root = small_doc.root
        assert left_sibling(root) is None
        assert right_sibling(root) is None
        assert not is_first_child(root)

    def test_depth(self, small_doc):
        nodes = nodes_by_id(small_doc)
        assert depth(nodes[0]) == 0
        assert depth(nodes[2]) == 1
        assert depth(nodes[3]) == 2
