"""The benchmark-regression gate's comparison logic.

The gate compares absolute ops/sec committed from one machine against a
run on another, so the unit under test is the machine-relative scaling:
a slower runner must not fail the gate on hardware alone, and a real
regression must still fail it after rescaling. The bench subprocesses
themselves are exercised by the CI bench job, not here.
"""

import importlib.util
import os

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir,
    "benchmarks", "ci_gate.py")

_spec = importlib.util.spec_from_file_location("ci_gate", _GATE_PATH)
ci_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(ci_gate)


class TestSelectBaseline:
    def test_picks_newest_strictly_earlier(self):
        assert ci_gate.select_baseline({1: "a", 3: "c", 4: "d"}, 4) == 3

    def test_never_picks_own_file(self):
        assert ci_gate.select_baseline({3: "c"}, 3) is None

    def test_empty_history(self):
        assert ci_gate.select_baseline({}, 1) is None


class TestDefaultPr:
    def test_one_past_newest_committed(self):
        assert ci_gate.default_pr({1: "a", 3: "c"}) == 4

    def test_empty_history_starts_at_one(self):
        assert ci_gate.default_pr({}) == 1

    def test_default_run_gates_against_newest_committed(self):
        # the no-flag CI run: a PR committing no new trajectory file
        # must still be gated (against the newest committed file), not
        # pass trivially via the strictly-earlier rule
        committed = {3: "BENCH_3.json"}
        pr = ci_gate.default_pr(committed)
        assert ci_gate.select_baseline(committed, pr) == 3


class TestCompare:
    CURRENT = {"bench": {"ops_per_sec": 500.0}}
    PREVIOUS = {"bench": {"ops_per_sec": 1000.0}}

    def test_raw_comparison_fails_on_drop(self):
        assert ci_gate.compare(self.CURRENT, self.PREVIOUS, 0.30)

    def test_slower_machine_passes_after_rescaling(self):
        # the baseline machine was twice as fast: 500 ops/s here is the
        # same code speed as the committed 1000 ops/s
        assert not ci_gate.compare(self.CURRENT, self.PREVIOUS, 0.30,
                                   scale=0.5)

    def test_real_regression_fails_despite_rescaling(self):
        current = {"bench": {"ops_per_sec": 100.0}}
        assert ci_gate.compare(current, self.PREVIOUS, 0.30, scale=0.5)

    def test_faster_machine_does_not_mask_regression(self):
        # a 2x faster runner raises the floor: matching the committed
        # absolute number now counts as a ~2x code slowdown
        assert ci_gate.compare(self.CURRENT, self.PREVIOUS, 0.30,
                               scale=2.0)
        assert not ci_gate.compare(
            {"bench": {"ops_per_sec": 1500.0}}, self.PREVIOUS, 0.30,
            scale=2.0)

    def test_missing_or_malformed_entries_are_skipped(self):
        current = {"bench": {"median_wall_s": 0.1}, "other": {}}
        assert not ci_gate.compare(current, self.PREVIOUS, 0.30)

    def test_io_bound_bench_floor_is_never_raised_by_fast_cpu(self):
        # fast CPU, slow disk: the CPU ratio must not raise the
        # fsync-bound bench's floor above its committed number
        name = next(iter(ci_gate.IO_BOUND_BENCHES))
        current = {name: {"ops_per_sec": 800.0}}
        previous = {name: {"ops_per_sec": 1000.0}}
        assert not ci_gate.compare(current, previous, 0.30, scale=3.0)
        # the slow-machine direction still scales the floor down
        assert not ci_gate.compare(
            {name: {"ops_per_sec": 400.0}}, previous, 0.30, scale=0.5)
        assert ci_gate.compare(
            {name: {"ops_per_sec": 300.0}}, previous, 0.30, scale=0.5)


class TestCheckFloors:
    FLOORS = {"bench": {"speedup": 1.3}}

    def test_metric_above_floor_passes(self):
        current = {"bench": {"speedup": 1.5}}
        assert not ci_gate.check_floors(current, self.FLOORS)

    def test_metric_below_floor_fails(self):
        current = {"bench": {"speedup": 1.1}}
        assert ci_gate.check_floors(current, self.FLOORS)

    def test_missing_metric_fails_loudly(self):
        # a bench that ran but stopped reporting the gated metric must
        # not pass silently
        assert ci_gate.check_floors({"bench": {}}, self.FLOORS)

    def test_bench_absent_from_run_is_skipped(self):
        # floors gate metrics of benches that ran; a partial local run
        # (e.g. --out with a bench subset) is not a failure
        assert not ci_gate.check_floors({}, self.FLOORS)

    def test_registered_floors_name_real_benches(self):
        smoke_names = {script.replace(".py", "")
                       for script, __ in ci_gate.SMOKE_RUNS}
        assert set(ci_gate.METRIC_FLOORS) <= smoke_names


class TestCommittedTrajectories:
    def test_untracked_output_is_not_a_baseline(self, tmp_path):
        # a previous local gate run leaves an untracked BENCH file in
        # the repo root; it is output, not committed history
        stray = os.path.join(ci_gate.REPO_ROOT, "BENCH_999.json")
        with open(stray, "w", encoding="utf-8") as handle:
            handle.write("{}")
        try:
            found = ci_gate.committed_trajectories()
        finally:
            os.unlink(stray)
        assert 999 not in found
        assert 3 in found  # this repo's committed trajectory

    def test_glob_fallback_outside_git(self, tmp_path, monkeypatch):
        (tmp_path / "BENCH_7.json").write_text("{}")
        (tmp_path / "BENCH_nope.json").write_text("{}")
        monkeypatch.setattr(ci_gate, "REPO_ROOT", str(tmp_path))

        def no_git(*args, **kwargs):
            raise OSError("git not available")

        monkeypatch.setattr(ci_gate.subprocess, "run", no_git)
        found = ci_gate.committed_trajectories()
        assert found == {7: str(tmp_path / "BENCH_7.json")}


class TestCalibration:
    def test_score_is_positive_and_repeatable_in_order_of_magnitude(self):
        first = ci_gate.machine_calibration(rounds=3, passes=2)
        second = ci_gate.machine_calibration(rounds=3, passes=2)
        assert first > 0 and second > 0
        # best-of timing on the same machine stays well inside the
        # gate's ±30% tolerance band
        assert 0.5 < first / second < 2.0
