"""Smoke tests: every figure benchmark runs at tiny scale and produces
well-formed series."""

from repro.bench import figures
from repro.bench.harness import Series, format_table, time_call


class TestHarness:
    def test_time_call(self):
        elapsed, result = time_call(lambda x: x * 2, 21, repeat=2)
        assert result == 42
        assert elapsed >= 0

    def test_series(self):
        series = Series("s").add(1, 0.5).add(2, 0.7)
        assert series.ys() == [0.5, 0.7]
        assert list(series) == [(1, 0.5), (2, 0.7)]

    def test_format_table(self):
        a = Series("alpha", [(1, 0.1), (2, 0.2)])
        b = Series("beta", [(1, 0.3), (2, 0.4)])
        table = format_table("T", "x", [a, b])
        assert "alpha" in table and "beta" in table
        assert table.count("\n") >= 4


class TestFigures:
    def test_fig6a(self):
        sizes, streaming, inmemory, mem_s, mem_m = figures.fig6a(
            scales=(0.02, 0.04), pul_ops=40, repeat=1)
        assert len(streaming.points) == 2
        assert all(y > 0 for y in streaming.ys() + inmemory.ys())
        assert all(y > 0 for y in mem_s.ys() + mem_m.ys())

    def test_fig6b(self):
        total, reduce_only, ser = figures.fig6b(sizes=(80, 160), scale=0.05)
        assert len(total.points) == 2
        assert all(t >= r for (__, t), (___, r)
                   in zip(total, reduce_only))

    def test_fig6c(self):
        total, agg = figures.fig6c(counts=(1, 2), ops_per_pul=40,
                                   scale=0.05)
        assert len(total.points) == 2

    def test_fig6d(self):
        aggregated, sequential = figures.fig6d(counts=(1, 2),
                                               ops_per_pul=25, scale=0.03)
        assert len(aggregated.points) == 2

    def test_fig6e(self):
        integration, resolution = figures.fig6e(sizes=(40,), pul_count=3,
                                                scale=0.05)
        assert len(integration.points) == 1

    def test_e6(self):
        (evaluation,) = figures.e6_pulsize_effect(sizes=(20, 40),
                                                  scale=0.05)
        assert len(evaluation.points) == 2

    def test_ablation_codes(self):
        rows = figures.ablation_codes(scale=0.02)
        assert [name for name, *__ in rows] == ["CDBS", "CDQS"]
        # CDQS codes are shorter in total than CDBS at equal position count
        assert rows[1][2] < rows[0][2]

    def test_ablation_reduction(self):
        optimized, naive = figures.ablation_reduction(sizes=(20,),
                                                      scale=0.02)
        assert optimized.points and naive.points
