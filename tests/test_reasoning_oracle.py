"""Tests for the structural oracles (Table 1 over ids)."""

import pytest
from hypothesis import given, settings

from repro.errors import ReproError
from repro.labeling import ContainmentLabeling
from repro.pul.pul import PUL
from repro.reasoning import DocumentOracle, LabelOracle, oracle_for
from repro.xdm.node import NodeType

from tests.strategies import documents


def oracles_for(document):
    labeling = ContainmentLabeling().build(document)
    return DocumentOracle(document), LabelOracle(labeling.as_mapping())


class TestAgreement:
    def test_figure1_oracles_agree(self, figure1):
        doc_oracle, label_oracle = oracles_for(figure1)
        ids = sorted(figure1.node_ids())
        for one in ids:
            assert doc_oracle.node_type(one) is label_oracle.node_type(one)
            assert doc_oracle.parent(one) == label_oracle.parent(one)
            assert doc_oracle.left_sibling(one) == \
                label_oracle.left_sibling(one)
            assert doc_oracle.right_sibling(one) == \
                label_oracle.right_sibling(one)
            for two in ids:
                if one == two:
                    continue
                for predicate in ("is_descendant", "is_child",
                                  "is_attribute_of", "is_left_sibling",
                                  "is_first_child", "is_last_child",
                                  "is_nonattr_descendant"):
                    assert getattr(doc_oracle, predicate)(one, two) == \
                        getattr(label_oracle, predicate)(one, two), \
                        (predicate, one, two)

    @settings(max_examples=25, deadline=None)
    @given(documents(max_depth=2, max_children=2))
    def test_random_documents_agree(self, document):
        doc_oracle, label_oracle = oracles_for(document)
        ids = sorted(document.node_ids())
        for one in ids:
            for two in ids:
                if one == two:
                    continue
                assert doc_oracle.is_descendant(one, two) == \
                    label_oracle.is_descendant(one, two)
                assert doc_oracle.is_child(one, two) == \
                    label_oracle.is_child(one, two)

    def test_order_keys_sort_identically(self, figure1):
        doc_oracle, label_oracle = oracles_for(figure1)
        ids = list(figure1.node_ids())
        by_doc = sorted(ids, key=doc_oracle.order_key)
        by_label = sorted(ids, key=label_oracle.order_key)
        assert by_doc == by_label

    def test_intervals_realize_containment(self, figure1):
        doc_oracle, label_oracle = oracles_for(figure1)
        for oracle in (doc_oracle, label_oracle):
            lo_root, hi_root = oracle.interval(0)
            lo_leaf, hi_leaf = oracle.interval(9)
            assert lo_root < lo_leaf and hi_leaf < hi_root


class TestDocumentOracleSnapshot:
    def test_answers_survive_mutation(self, small_doc):
        oracle = DocumentOracle(small_doc)
        node = small_doc.get(2)
        small_doc.detach_node(node)
        # the oracle still answers about the original state
        assert oracle.is_child(2, 0)
        assert oracle.node_type(2) is NodeType.ELEMENT

    def test_unknown_node_raises(self, small_doc):
        oracle = DocumentOracle(small_doc)
        with pytest.raises(ReproError):
            oracle.node_type(999)


class TestLabelOracle:
    def test_missing_label_raises_informative(self):
        oracle = LabelOracle({})
        with pytest.raises(ReproError, match="label"):
            oracle.parent(7)

    def test_knows(self, figure1):
        __, oracle = oracles_for(figure1)
        assert oracle.knows(0)
        assert not oracle.knows(999)

    def test_add_merges(self, figure1):
        labeling = ContainmentLabeling().build(figure1)
        partial = LabelOracle({})
        partial.add(labeling.as_mapping())
        assert partial.knows(0)


class TestOracleFor:
    def test_dispatch(self, figure1):
        labeling = ContainmentLabeling().build(figure1)
        assert isinstance(oracle_for(figure1), DocumentOracle)
        assert isinstance(oracle_for(labeling.as_mapping()), LabelOracle)
        pul = PUL([], labels=labeling.as_mapping())
        assert isinstance(oracle_for(pul), LabelOracle)
        assert isinstance(oracle_for([pul, pul]), LabelOracle)
        existing = DocumentOracle(figure1)
        assert oracle_for(existing) is existing

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            oracle_for(42)
