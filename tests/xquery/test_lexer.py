"""Tokenizer tests."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xquery.lexer import (
    EOF,
    INTEGER,
    NAME,
    STRING,
    SYMBOL,
    XML,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


class TestTokens:
    def test_names_and_symbols(self):
        tokens = tokenize("delete nodes /a//b[1]")
        assert [t.value for t in tokens[:4]] == \
            ["delete", "nodes", "/", "a"]
        assert kinds("/a//b") == [SYMBOL, NAME, SYMBOL, NAME, EOF]

    def test_strings_both_quotes(self):
        tokens = tokenize("""'one' "two" """)
        assert [t.value for t in tokens if t.kind == STRING] == \
            ["one", "two"]

    def test_integers(self):
        tokens = tokenize("[42]")
        assert tokens[1].kind == INTEGER and tokens[1].value == 42

    def test_xml_constructor_single_token(self):
        tokens = tokenize("insert node <a x='1'><b/>hi</a> into /r")
        xml = [t for t in tokens if t.kind == XML]
        assert len(xml) == 1
        assert xml[0].value.name == "a"
        assert xml[0].value.children[1].value == "hi"

    def test_attribute_keyword_braces(self):
        assert kinds('attribute k {"v"}') == \
            [NAME, NAME, SYMBOL, STRING, SYMBOL, EOF]

    def test_name_with_punctuation(self):
        tokens = tokenize("a-b.c_d")
        assert tokens[0].value == "a-b.c_d"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'oops")

    def test_bad_xml(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("insert node <a><b></a> into /r")

    def test_unknown_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("delete nodes /a ; whoops")

    def test_position_reported(self):
        with pytest.raises(QuerySyntaxError) as info:
            tokenize("   'oops")
        assert info.value.position == 3
