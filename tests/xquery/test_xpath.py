"""XPath-subset evaluation tests."""

import pytest

from repro.errors import QueryEvaluationError
from repro.xdm import parse_document
from repro.xquery.parser import parse_program
from repro.xquery.xpath import evaluate_path

DOC = parse_document(
    "<doc>"
    "<paper id='p1' status='ok'><title>Alpha</title>"
    "<authors><author>A</author><author>B</author></authors></paper>"
    "<paper id='p2' status='retracted'><title>Beta</title></paper>"
    "<note>n</note>"
    "</doc>")


def select(path_text, document=DOC):
    (expr,) = parse_program("delete nodes " + path_text)
    return evaluate_path(expr.target, document=document)


def names(path_text):
    return [node.name if node.is_element or node.is_attribute
            else node.value for node in select(path_text)]


class TestSteps:
    def test_root_step(self):
        assert names("/doc") == ["doc"]

    def test_wrong_root_name(self):
        assert names("/nope") == []

    def test_child_chain(self):
        assert len(select("/doc/paper/title")) == 2

    def test_wildcard(self):
        assert names("/doc/*") == ["paper", "paper", "note"]

    def test_descendant(self):
        assert len(select("//author")) == 2

    def test_descendant_finds_attributes(self):
        assert len(select("//@id")) == 2

    def test_attribute_step(self):
        assert [a.value for a in select("/doc/paper/@id")] == ["p1", "p2"]

    def test_attribute_wildcard(self):
        assert len(select("/doc/paper[1]/@*")) == 2

    def test_text_test(self):
        values = [n.value for n in select("//title/text()")]
        assert values == ["Alpha", "Beta"]

    def test_document_order_and_dedup(self):
        nodes = select("//paper/title")
        positions = [n.parent.attributes[0].value for n in nodes]
        assert positions == ["p1", "p2"]


class TestPredicates:
    def test_position(self):
        assert [a.value for a in select("/doc/paper[2]/@id")] == ["p2"]

    def test_position_out_of_range(self):
        assert select("/doc/paper[5]") == []

    def test_last(self):
        assert [a.value for a in select("/doc/paper[last()]/@id")] == ["p2"]

    def test_exists(self):
        assert len(select("/doc/paper[authors]")) == 1

    def test_compare_attribute(self):
        assert len(select('/doc/paper[@status = "retracted"]')) == 1

    def test_compare_element_string_value(self):
        assert len(select('/doc/paper[title = "Alpha"]')) == 1

    def test_stacked(self):
        assert len(select('/doc/paper[@status = "ok"][1]')) == 1


class TestErrors:
    def test_relative_without_context(self):
        from repro.xquery.ast import Path, Step, CHILD, ELEMENT_TEST
        path = Path([Step(CHILD, ELEMENT_TEST, name="x")], absolute=False)
        with pytest.raises(QueryEvaluationError):
            evaluate_path(path)
