"""End-to-end PUL production from updating expressions."""

import pytest

from repro.errors import QueryEvaluationError
from repro.labeling import ContainmentLabeling
from repro.pul import apply_pul, pul_from_xml, pul_to_xml
from repro.xdm import parse_document, serialize
from repro.xquery import compile_pul

DOC_XML = (
    "<doc>"
    "<paper id='p1'><title>Alpha</title>"
    "<authors><author>A</author></authors></paper>"
    "<paper id='p2' status='retracted'><title>Beta</title>"
    "<abstract>old</abstract></paper>"
    "</doc>")


@pytest.fixture
def doc():
    return parse_document(DOC_XML)


def run(doc, query):
    pul = compile_pul(query, doc)
    working = doc.copy()
    apply_pul(working, pul)
    return pul, serialize(working)


class TestCompilation:
    def test_insert_as_last(self, doc):
        pul, out = run(doc, "insert node <author>G</author> as last into "
                            "/doc/paper[1]/authors")
        assert len(pul) == 1
        assert "<author>A</author><author>G</author>" in out

    def test_insert_attribute_constructor(self, doc):
        __, out = run(doc, 'insert node attribute v {"2"} into '
                           '/doc/paper[1]')
        assert 'v="2"' in out

    def test_mixed_source_splits_attribute_and_content(self, doc):
        pul, __ = run(doc, 'insert nodes (attribute v {"2"}, <x/>) into '
                           '/doc/paper[1]')
        assert sorted(op.op_name for op in pul) == \
            ["insertAttributes", "insertInto"]

    def test_attribute_content_requires_into(self, doc):
        with pytest.raises(QueryEvaluationError):
            compile_pul('insert node attribute v {"2"} before /doc/paper[1]',
                        doc)

    def test_delete_many(self, doc):
        pul, out = run(doc, "delete nodes //author, delete nodes //abstract")
        assert len(pul) == 2
        assert "<author>" not in out and "abstract" not in out

    def test_replace_value(self, doc):
        __, out = run(doc, 'replace value of node '
                           '/doc/paper[1]/title/text() with "Gamma"')
        assert "<title>Gamma</title>" in out

    def test_replace_node(self, doc):
        __, out = run(doc, "replace node /doc/paper[2] with <paper/>")
        assert out.count("<paper") == 2

    def test_replace_children(self, doc):
        __, out = run(doc, 'replace children of node //abstract with "new"')
        assert "<abstract>new</abstract>" in out

    def test_rename(self, doc):
        __, out = run(doc, "rename node //abstract as summary")
        assert "<summary>old</summary>" in out

    def test_snapshot_semantics(self, doc):
        """All paths resolve against the original document (XQUF
        snapshot): renaming then targeting the old name works."""
        pul, out = run(doc, "rename node //abstract as summary, "
                            'replace children of node //abstract with "x"')
        assert "<summary>x</summary>" in out

    def test_multiple_targets_for_single_target_expr_fail(self, doc):
        with pytest.raises(QueryEvaluationError):
            compile_pul("rename node //paper as article", doc)

    def test_empty_target_fails(self, doc):
        with pytest.raises(QueryEvaluationError):
            compile_pul("replace node /doc/nothing with <x/>", doc)

    def test_labels_and_origin_attached(self, doc):
        labeling = ContainmentLabeling().build(doc)
        pul = compile_pul("delete nodes //author", doc, labeling=labeling,
                          origin="me")
        assert pul.origin == "me"
        assert set(pul.labels) == pul.targets()

    def test_produced_pul_roundtrips(self, doc):
        labeling = ContainmentLabeling().build(doc)
        pul = compile_pul(
            "insert node <a/> after //abstract, delete nodes //author",
            doc, labeling=labeling)
        assert pul_from_xml(pul_to_xml(pul)) == pul
