"""Parser tests for the XQuery Update subset."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xquery import ast
from repro.xquery.parser import parse_program


def single(text):
    (expression,) = parse_program(text)
    return expression


class TestInsert:
    def test_as_last_into(self):
        expr = single("insert node <a/> as last into /r/b")
        assert isinstance(expr, ast.InsertExpr)
        assert expr.position == ast.INTO_LAST
        assert [s.name for s in expr.target.steps] == ["r", "b"]

    def test_as_first_into(self):
        expr = single("insert node <a/> as first into /r")
        assert expr.position == ast.INTO_FIRST

    def test_bare_into_is_nondeterministic(self):
        expr = single("insert node <a/> into /r")
        assert expr.position == ast.INTO

    def test_before_after(self):
        assert single("insert node <a/> before /r/b").position == ast.BEFORE
        assert single("insert node <a/> after /r/b").position == ast.AFTER

    def test_sequence_source(self):
        expr = single('insert nodes (<a/>, "txt", <b/>) into /r')
        assert len(expr.source.items) == 3
        assert expr.source.items[1] == "txt"

    def test_attribute_constructor(self):
        expr = single('insert node attribute version {"2"} into /r')
        (item,) = expr.source.items
        assert isinstance(item, ast.AttributeConstructor)
        assert (item.name, item.value) == ("version", "2")


class TestOtherExpressions:
    def test_delete(self):
        expr = single("delete nodes //paper")
        assert isinstance(expr, ast.DeleteExpr)
        assert expr.target.steps[0].axis == ast.DESCENDANT

    def test_replace_value(self):
        expr = single('replace value of node /r/t with "new"')
        assert isinstance(expr, ast.ReplaceValueExpr)
        assert expr.value == "new"

    def test_replace_node(self):
        expr = single("replace node /r/b with <c/>")
        assert isinstance(expr, ast.ReplaceNodeExpr)

    def test_replace_children(self):
        expr = single('replace children of node /r with "x"')
        assert isinstance(expr, ast.ReplaceChildrenExpr)

    def test_rename_with_name_or_string(self):
        assert single("rename node /r as foo").name == "foo"
        assert single('rename node /r as "bar"').name == "bar"

    def test_program_sequence(self):
        expressions = parse_program(
            "delete node /a, rename node /b as c")
        assert len(expressions) == 2


class TestPaths:
    def path(self, text):
        return single("delete nodes " + text).target

    def test_relative_path(self):
        path = self.path("b/c")
        assert not path.absolute

    def test_wildcard(self):
        path = self.path("/r/*")
        assert path.steps[1].name is None

    def test_attribute_step(self):
        path = self.path("/r/@id")
        assert path.steps[1].axis == ast.ATTRIBUTE
        assert path.steps[1].name == "id"

    def test_attribute_wildcard(self):
        path = self.path("/r/@*")
        assert path.steps[1].axis == ast.ATTRIBUTE
        assert path.steps[1].name is None

    def test_text_test(self):
        path = self.path("/r/text()")
        assert path.steps[1].test == ast.TEXT_TEST

    def test_descendant_abbreviation(self):
        path = self.path("//b//c")
        assert all(step.axis == ast.DESCENDANT for step in path.steps)

    def test_positional_predicate(self):
        path = self.path("/r/b[2]")
        (predicate,) = path.steps[1].predicates
        assert isinstance(predicate, ast.PositionPredicate)
        assert predicate.index == 2

    def test_last_predicate(self):
        path = self.path("/r/b[last()]")
        (predicate,) = path.steps[1].predicates
        assert predicate.last

    def test_exists_predicate(self):
        path = self.path("/r/b[c/d]")
        (predicate,) = path.steps[1].predicates
        assert isinstance(predicate, ast.ExistsPredicate)

    def test_compare_predicate(self):
        path = self.path('/r/b[@id = "x"]')
        (predicate,) = path.steps[1].predicates
        assert isinstance(predicate, ast.ComparePredicate)
        assert predicate.literal == "x"

    def test_stacked_predicates(self):
        path = self.path('/r/b[c][2]')
        assert len(path.steps[1].predicates) == 2


class TestErrors:
    @pytest.mark.parametrize("text", [
        "insert <a/> into /r",
        "insert node <a/> within /r",
        "delete /a",
        "replace value of node /a with <b/>",
        "rename node /a",
        "delete node /a extra",
        "frobnicate /a",
        "insert node into /r",
    ])
    def test_rejects(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_program(text)
