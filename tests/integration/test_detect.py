"""Tests for conflict detection (Algorithm 1)."""

from repro.integration import ConflictType, detect_conflicts, integrate
from repro.labeling import ContainmentLabeling
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertBefore,
    InsertAttributes,
    InsertInto,
    InsertIntoAsFirst,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL, merge
from repro.reasoning import DocumentOracle
from repro.xdm import parse_document
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest


def conflicts_of(document, *puls):
    __, conflicts = detect_conflicts(list(puls),
                                     structure=DocumentOracle(document))
    return conflicts


class TestDetection:
    def test_no_conflicts_between_disjoint_puls(self, small_doc):
        a = PUL([Rename(2, "x")])
        b = PUL([ReplaceValue(7, "y")])
        assert conflicts_of(small_doc, a, b) == []

    def test_type1_same_modification(self, small_doc):
        found = conflicts_of(small_doc,
                             PUL([Rename(2, "x")]), PUL([Rename(2, "y")]))
        assert [c.conflict_type for c in found] == \
            [ConflictType.REPEATED_MODIFICATION]

    def test_type1_needs_distinct_puls(self, small_doc):
        # two compatible modifications inside ONE pul are not a conflict
        found = conflicts_of(small_doc,
                             PUL([ReplaceValue(3, "a")]),
                             PUL([Rename(2, "b")]))
        assert found == []

    def test_type2_attribute_clash(self, small_doc):
        a = PUL([InsertAttributes(2, [Node.attribute("k", "1")])])
        b = PUL([InsertAttributes(2, [Node.attribute("k", "2")])])
        found = conflicts_of(small_doc, a, b)
        assert [c.conflict_type for c in found] == \
            [ConflictType.REPEATED_ATTRIBUTE_INSERTION]

    def test_type2_disjoint_names_no_conflict(self, small_doc):
        a = PUL([InsertAttributes(2, [Node.attribute("k1", "1")])])
        b = PUL([InsertAttributes(2, [Node.attribute("k2", "2")])])
        assert conflicts_of(small_doc, a, b) == []

    def test_type2_transitive_component(self, small_doc):
        a = PUL([InsertAttributes(2, [Node.attribute("k1", "1"),
                                      Node.attribute("k2", "1")])])
        b = PUL([InsertAttributes(2, [Node.attribute("k2", "2"),
                                      Node.attribute("k3", "2")])])
        c = PUL([InsertAttributes(2, [Node.attribute("k3", "3")])])
        found = conflicts_of(small_doc, a, b, c)
        assert len(found) == 1
        assert len(found[0].operations) == 3

    def test_type3_order(self, small_doc):
        a = PUL([InsertAfter(2, parse_forest("<p/>"))])
        b = PUL([InsertAfter(2, parse_forest("<q/>"))])
        found = conflicts_of(small_doc, a, b)
        assert [c.conflict_type for c in found] == \
            [ConflictType.INSERTION_ORDER]

    def test_type3_not_for_into(self, small_doc):
        a = PUL([InsertInto(0, parse_forest("<p/>"))])
        b = PUL([InsertInto(0, parse_forest("<q/>"))])
        assert conflicts_of(small_doc, a, b) == []

    def test_type4_local_override(self, small_doc):
        a = PUL([Delete(2)])
        b = PUL([Rename(2, "x")])
        found = conflicts_of(small_doc, a, b)
        assert [c.conflict_type for c in found] == \
            [ConflictType.LOCAL_OVERRIDE]
        assert found[0].overrider.op == Delete(2)

    def test_type4_del_vs_del_is_not_a_conflict(self, small_doc):
        assert conflicts_of(small_doc, PUL([Delete(2)]),
                            PUL([Delete(2)])) == []

    def test_type5_non_local(self, small_doc):
        a = PUL([Delete(0)])
        b = PUL([Rename(2, "x")])
        found = conflicts_of(small_doc, a, b)
        assert [c.conflict_type for c in found] == \
            [ConflictType.NON_LOCAL_OVERRIDE]

    def test_type5_repc_spares_attributes(self, small_doc):
        a = PUL([ReplaceChildren(0, "t")])
        b = PUL([ReplaceValue(1, "w")])  # @x of the root
        assert conflicts_of(small_doc, a, b) == []

    def test_type5_deep_nesting(self):
        doc = parse_document("<a><b><c><d/></c></b></a>")
        a = PUL([ReplaceNode(1, parse_forest("<z/>"))])
        b = PUL([Rename(3, "x")])
        found = conflicts_of(doc, a, b)
        assert len(found) == 1
        assert found[0].conflict_type == ConflictType.NON_LOCAL_OVERRIDE

    def test_empty_repn_normalized_to_delete(self, small_doc):
        # repN(v, []) ~ del(v): del-vs-del exclusion applies (footnote 3)
        a = PUL([ReplaceNode(2, [])])
        b = PUL([Delete(2)])
        assert conflicts_of(small_doc, a, b) == []

    def test_clean_operations_returned(self, small_doc):
        a = PUL([Rename(2, "x"), ReplaceValue(7, "keep")])
        b = PUL([Rename(2, "y")])
        clean, conflicts = detect_conflicts(
            [a, b], structure=DocumentOracle(small_doc))
        assert len(conflicts) == 1
        assert [t.op.op_name for t in clean] == ["replaceValue"]


class TestExample7:
    """The paper's Example 7 on an equivalent document shape."""

    DOC = ("<r><author>AA</author><person><name>BB</name></person>"
           "<page>33</page></r>")
    # r=0 author=1 'AA'=2 person=3 name=4 'BB'=5 page=6 '33'=7

    def _puls(self):
        d1 = PUL([InsertAttributes(3, [Node.attribute(
                      "email", "catania@disi")]),
                  InsertAfter(1, parse_forest("<author>G G</author>")),
                  ReplaceValue(7, "34")], origin="p1")
        d2 = PUL([InsertAttributes(3, [Node.attribute(
                      "email", "catania@gmail")]),
                  InsertAfter(1, parse_forest("<author>A C</author>")),
                  ReplaceValue(7, "35"),
                  ReplaceValue(5, "F C"),
                  InsertBefore(3, parse_forest("<author>F C</author>"))],
                 origin="p2")
        d3 = PUL([ReplaceChildren(3, "G G")], origin="p3")
        return d1, d2, d3

    def test_exactly_the_four_conflicts(self):
        document = parse_document(self.DOC)
        d1, d2, d3 = self._puls()
        found = conflicts_of(document, d1, d2, d3)
        types = sorted(int(c.conflict_type) for c in found)
        assert types == [1, 2, 3, 5]
        type5 = next(c for c in found if int(c.conflict_type) == 5)
        assert type5.overrider.op.op_name == "replaceChildren"
        assert [t.op.op_name for t in type5.operations] == ["replaceValue"]

    def test_label_oracle_gives_same_conflicts(self):
        document = parse_document(self.DOC)
        labeling = ContainmentLabeling().build(document)
        d1, d2, d3 = self._puls()
        for pul in (d1, d2, d3):
            pul.attach_labels(labeling)
        clean_doc, via_doc = detect_conflicts(
            [d1, d2, d3], structure=DocumentOracle(document))
        clean_lab, via_lab = detect_conflicts([d1, d2, d3])
        assert sorted(c.describe() for c in via_doc) == \
            sorted(c.describe() for c in via_lab)


class TestProposition2:
    def test_no_conflicts_means_merge(self, small_doc):
        from repro.pul.equivalence import (
            obtainable_strings,
            sequential_obtainable_strings,
        )
        a = PUL([InsertAttributes(0, [Node.attribute("n1", "1")]),
                 ReplaceValue(3, "MM"),
                 ReplaceNode(4, parse_forest("<k/>"))])
        b = PUL([InsertAttributes(0, [Node.attribute("n2", "2")]),
                 Rename(5, "dd")])
        result = integrate([a, b], structure=DocumentOracle(small_doc))
        assert not result.has_conflicts
        assert result.pul == merge(a, b)
        keys = obtainable_strings(small_doc, result.pul)
        assert keys == sequential_obtainable_strings(small_doc, [a, b])
        assert keys == sequential_obtainable_strings(small_doc, [b, a])
