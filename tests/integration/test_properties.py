"""Property tests: Proposition 2 and reconciliation invariants on random
inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotApplicableError, ReconciliationError
from repro.integration import detect_conflicts, integrate, reconcile
from repro.pul.equivalence import (
    obtainable_strings,
    sequential_obtainable_strings,
)
from repro.pul.pul import PUL
from repro.pul.semantics import ObtainableLimitExceeded, apply_pul
from repro.reasoning import DocumentOracle

from tests.strategies import applicable_puls, documents

_SETTINGS = dict(max_examples=50, deadline=None)


@settings(**_SETTINGS)
@given(st.data())
def test_proposition2_no_conflicts_means_order_independent(data):
    """When the integration of two (deterministically reduced) PULs has no
    conflicts, the merged PUL is equivalent to both sequential orders."""
    from repro.reduction import reduce_deterministic
    document = data.draw(documents(max_depth=2, max_children=2))
    oracle = DocumentOracle(document)
    pul1 = reduce_deterministic(
        data.draw(applicable_puls(document, max_ops=3)), oracle)
    pul2 = reduce_deterministic(
        data.draw(applicable_puls(document, max_ops=3)), oracle)
    result = integrate([pul1, pul2], structure=oracle)
    if result.has_conflicts:
        return
    try:
        combined = obtainable_strings(document, result.pul, limit=3000)
        seq12 = sequential_obtainable_strings(document, [pul1, pul2],
                                              limit=3000)
        seq21 = sequential_obtainable_strings(document, [pul2, pul1],
                                              limit=3000)
    except (ObtainableLimitExceeded, RuntimeError):
        return
    except Exception:
        # a PUL of the pair may be inapplicable on the other's outcome
        # (e.g. duplicate attribute names) — outside Prop 2's premises
        return
    assert combined == seq12 == seq21


@settings(**_SETTINGS)
@given(st.data())
def test_integration_partitions_operations(data):
    """Every input operation is either in the clean PUL or in some
    conflict — never both, never dropped."""
    document = data.draw(documents(max_depth=2, max_children=2))
    oracle = DocumentOracle(document)
    puls = [data.draw(applicable_puls(document, max_ops=4))
            for __ in range(2)]
    clean, conflicts = detect_conflicts(puls, structure=oracle)
    clean_ids = {id(t.op) for t in clean}
    conflicted = set()
    for conflict in conflicts:
        for tagged in conflict.all_tagged():
            conflicted.add(id(tagged.op))
    total = sum(len(p.normalized()) for p in puls)
    assert len(clean_ids | conflicted) == total
    assert not clean_ids & conflicted


@settings(**_SETTINGS)
@given(st.data())
def test_reconciliation_output_is_conflict_free_and_applicable(data):
    document = data.draw(documents(max_depth=2, max_children=2))
    oracle = DocumentOracle(document)
    puls = [data.draw(applicable_puls(document, max_ops=4))
            for __ in range(2)]
    try:
        result = reconcile(puls, policies={}, structure=oracle)
    except ReconciliationError:
        return
    result.check_compatible()
    __, conflicts = detect_conflicts([result, PUL()], structure=oracle)
    assert conflicts == []
    applied = document.copy()
    try:
        apply_pul(applied, result)
    except NotApplicableError as error:
        # renames from different producers may collide on an attribute
        # name — an XQUF dynamic error outside the paper's conflict
        # catalog, raised identically by both evaluators
        assert "duplicate attribute" in str(error)
    except Exception as error:  # pragma: no cover - diagnostic
        raise AssertionError(
            "reconciled PUL not applicable: {}".format(error))
