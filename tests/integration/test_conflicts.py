"""Unit tests for the Figure 3 conflict relations and the conflict model."""

import pytest

from repro.integration.conflicts import (
    Conflict,
    ConflictType,
    TaggedOp,
    insertion_order,
    local_override,
    non_local_override,
    repeated_attribute_insertion,
    repeated_modification,
)
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.reasoning import DocumentOracle
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest


class TestPairwiseRelations:
    def test_repeated_modification(self):
        assert repeated_modification(Rename(1, "a"), Rename(1, "b"))
        assert repeated_modification(ReplaceValue(1, "a"),
                                     ReplaceValue(1, "b"))
        assert not repeated_modification(Rename(1, "a"),
                                         ReplaceValue(1, "b"))
        assert not repeated_modification(Rename(1, "a"), Rename(2, "b"))
        assert not repeated_modification(Delete(1), Delete(1))

    def test_repeated_attribute_insertion_requires_shared_name(self):
        a = InsertAttributes(1, [Node.attribute("k", "1")])
        b = InsertAttributes(1, [Node.attribute("k", "2")])
        c = InsertAttributes(1, [Node.attribute("other", "3")])
        assert repeated_attribute_insertion(a, b)
        assert not repeated_attribute_insertion(a, c)

    def test_insertion_order_kinds(self):
        for cls in (InsertBefore, InsertAfter, InsertIntoAsFirst,
                    InsertIntoAsLast):
            assert insertion_order(cls(1, parse_forest("<a/>")),
                                   cls(1, parse_forest("<b/>")))
        assert not insertion_order(InsertInto(1, parse_forest("<a/>")),
                                   InsertInto(1, parse_forest("<b/>")))
        assert not insertion_order(
            InsertBefore(1, parse_forest("<a/>")),
            InsertAfter(1, parse_forest("<b/>")))

    def test_local_override(self):
        assert local_override(Delete(1), Rename(1, "x"))
        assert local_override(ReplaceNode(1, []), InsertInto(
            1, parse_forest("<a/>")))
        assert not local_override(Delete(1), Delete(1))
        assert not local_override(Delete(1), InsertBefore(
            1, parse_forest("<a/>")))
        assert local_override(ReplaceChildren(1, "t"),
                              InsertIntoAsLast(1, parse_forest("<a/>")))
        assert not local_override(ReplaceChildren(1, "t"),
                                  InsertAttributes(
                                      1, [Node.attribute("k", "v")]))

    def test_non_local_override(self, small_doc):
        oracle = DocumentOracle(small_doc)
        assert non_local_override(Delete(0), Rename(2, "x"), oracle)
        assert not non_local_override(Delete(0), Delete(2), oracle)
        assert not non_local_override(Rename(0, "x"), Rename(2, "y"),
                                      oracle)
        # repC does not reach the target's own attributes
        assert not non_local_override(ReplaceChildren(0, "t"),
                                      ReplaceValue(1, "w"), oracle)
        assert non_local_override(ReplaceChildren(0, "t"),
                                  ReplaceValue(3, "w"), oracle)


class TestConflictModel:
    def _tagged(self, op, pul=0):
        return TaggedOp(op, pul)

    def test_symmetric_needs_two(self):
        with pytest.raises(ValueError):
            Conflict(ConflictType.REPEATED_MODIFICATION,
                     [self._tagged(Rename(1, "a"))])

    def test_symmetric_refuses_overrider(self):
        with pytest.raises(ValueError):
            Conflict(ConflictType.INSERTION_ORDER,
                     [self._tagged(Rename(1, "a")),
                      self._tagged(Rename(1, "b"), 1)],
                     overrider=self._tagged(Delete(1), 2))

    def test_asymmetric_needs_overrider(self):
        with pytest.raises(ValueError):
            Conflict(ConflictType.LOCAL_OVERRIDE,
                     [self._tagged(Rename(1, "a"))])

    def test_focus(self):
        symmetric = Conflict(
            ConflictType.REPEATED_MODIFICATION,
            [self._tagged(Rename(4, "a")), self._tagged(Rename(4, "b"), 1)])
        assert symmetric.focus() == 4
        asymmetric = Conflict(
            ConflictType.NON_LOCAL_OVERRIDE,
            [self._tagged(Rename(4, "a"))],
            overrider=self._tagged(Delete(2), 1))
        assert asymmetric.focus() == 2

    def test_all_tagged(self):
        conflict = Conflict(
            ConflictType.LOCAL_OVERRIDE,
            [self._tagged(Rename(1, "a"))],
            overrider=self._tagged(Delete(1), 1))
        assert len(conflict.all_tagged()) == 2

    def test_symmetry_property(self):
        assert ConflictType.REPEATED_MODIFICATION.symmetric
        assert ConflictType.REPEATED_ATTRIBUTE_INSERTION.symmetric
        assert ConflictType.INSERTION_ORDER.symmetric
        assert not ConflictType.LOCAL_OVERRIDE.symmetric
        assert not ConflictType.NON_LOCAL_OVERRIDE.symmetric
