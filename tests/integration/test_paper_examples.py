"""The paper's Examples 6 and 9, end to end."""

import pytest

from repro.errors import ReconciliationError
from repro.integration import ProducerPolicy, integrate, reconcile
from repro.pul.ops import (
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL, merge
from repro.reasoning import DocumentOracle
from repro.reduction import reduce_deterministic
from repro.xdm import parse_document
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest

DOC = ("<r><author>AA</author><person><name>BB</name></person>"
       "<page>33</page></r>")
# r=0 author=1 'AA'=2 person=3 name=4 'BB'=5 page=6 '33'=7


@pytest.fixture
def doc():
    return parse_document(DOC)


@pytest.fixture
def oracle(doc):
    return DocumentOracle(doc)


class TestExample6:
    def test_conflict_free_integration_reduces_like_the_paper(self, doc,
                                                              oracle):
        d1 = PUL([InsertAttributes(1, [Node.attribute(
                      "initPage", "132")]),
                  ReplaceValue(2, "MM"),
                  ReplaceNode(3, parse_forest("<authors/>"))], origin="a")
        d2 = PUL([InsertAttributes(1, [Node.attribute(
                      "lastPage", "134")]),
                  Rename(6, "title")], origin="b")
        result = integrate([d1, d2], structure=oracle)
        assert not result.has_conflicts
        assert result.pul == merge(d1, d2)
        reduced = reduce_deterministic(result.pul, oracle)
        # the two insA on node 1 collapse (rule I5)
        ins_attrs = [op for op in reduced
                     if op.op_name == "insertAttributes"]
        assert len(ins_attrs) == 1
        assert len(ins_attrs[0].trees) == 2


class TestExample9:
    def _puls(self):
        op11 = InsertAttributes(3, [Node.attribute("email", "c@disi")])
        op21 = InsertAfter(1, parse_forest("<author>G G</author>"))
        op31 = ReplaceValue(7, "34")
        d1 = PUL([op11, op21, op31], origin="p1")
        op12 = InsertAttributes(3, [Node.attribute("email", "c@gmail")])
        op22 = InsertAfter(1, parse_forest("<author>A C</author>"))
        op32 = ReplaceValue(7, "35")
        op42 = ReplaceValue(5, "F C")
        op52 = InsertBefore(3, parse_forest("<author>F C</author>"))
        d2 = PUL([op12, op22, op32, op42, op52], origin="p2")
        op13 = ReplaceChildren(3, "G G")
        d3 = PUL([op13], origin="p3")
        keep = dict(op11=op11, op31=op31, op52=op52, op13=op13,
                    op12=op12, op32=op32, op42=op42)
        return d1, d2, d3, keep

    def test_resolution_matches_the_paper(self, doc, oracle):
        d1, d2, d3, ops = self._puls()
        policies = {
            "p1": ProducerPolicy(preserve_insertion_order=True,
                                 preserve_inserted_data=True),
            "p3": ProducerPolicy(preserve_inserted_data=True),
        }
        result = reconcile([d1, d2, d3], policies=policies,
                           structure=oracle)
        # expected: {ins→(1, [G G, A C]), op11, op31, op13, op52}
        assert len(result) == 5
        merged = next(op for op in result if op.op_name == "insertAfter")
        assert merged.param_key() == \
            "<author>G G</author><author>A C</author>"
        for name in ("op11", "op31", "op13", "op52"):
            assert ops[name] in result
        for name in ("op12", "op32", "op42"):
            assert ops[name] not in result

    def test_all_demand_order_fails(self, doc, oracle):
        d1, d2, d3, __ = self._puls()
        policies = {name: ProducerPolicy(preserve_insertion_order=True)
                    for name in ("p1", "p2", "p3")}
        with pytest.raises(ReconciliationError):
            reconcile([d1, d2, d3], policies=policies, structure=oracle)
