"""Tests for conflict resolution (Algorithm 3) and the producer policies."""

import pytest

from repro.errors import ReconciliationError
from repro.integration import (
    ConflictType,
    ProducerPolicy,
    detect_conflicts,
    integrate,
    reconcile,
)
from repro.integration.policies import (
    exclusion_violates,
    op_inserts_data,
    op_removes_data,
)
from repro.integration.conflicts import TaggedOp
from repro.integration.resolve import order_conflicts
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertIntoAsFirst,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.reasoning import DocumentOracle
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest


class TestPolicyPredicates:
    def test_inserting_ops(self):
        assert op_inserts_data(InsertAfter(1, parse_forest("<a/>")))
        assert op_inserts_data(ReplaceValue(1, "x"))
        assert op_inserts_data(ReplaceNode(1, parse_forest("<a/>")))
        assert not op_inserts_data(ReplaceNode(1, []))
        assert not op_inserts_data(Delete(1))
        assert not op_inserts_data(Rename(1, "x"))

    def test_removing_ops(self):
        assert op_removes_data(Delete(1))
        assert op_removes_data(ReplaceChildren(1, "t"))
        assert op_removes_data(ReplaceValue(1, "x"))
        assert not op_removes_data(Rename(1, "x"))
        assert not op_removes_data(InsertAfter(1, parse_forest("<a/>")))

    def test_exclusion_violates(self):
        protected = ProducerPolicy(preserve_inserted_data=True)
        tagged = TaggedOp(InsertAfter(1, parse_forest("<a/>")), 0, "p")
        assert exclusion_violates(tagged, {"p": protected})
        assert not exclusion_violates(tagged, {"p": ProducerPolicy()})
        assert not exclusion_violates(tagged, None)

    def test_policy_flags(self):
        assert not any([ProducerPolicy.none().preserve_insertion_order,
                        ProducerPolicy.none().preserve_inserted_data,
                        ProducerPolicy.none().preserve_removed_data])
        strict = ProducerPolicy.strict()
        assert strict.preserve_insertion_order
        assert strict.preserve_removed_data


class TestOrdering:
    def test_focus_document_order_then_precedence(self, small_doc):
        oracle = DocumentOracle(small_doc)
        late = PUL([Rename(5, "a")])
        late2 = PUL([Rename(5, "b")])
        early_override = PUL([Delete(2)])
        early_victim = PUL([Rename(2, "v")])
        __, conflicts = detect_conflicts(
            [late, late2, early_override, early_victim], structure=oracle)
        ordered = order_conflicts(conflicts, oracle)
        assert ordered[0].focus() == 2
        assert ordered[1].focus() == 5

    def test_precedence_on_same_focus(self, small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([ReplaceNode(2, parse_forest("<x/>")),
                 InsertAfter(2, parse_forest("<p/>"))])
        b = PUL([ReplaceNode(2, parse_forest("<y/>")),
                 InsertAfter(2, parse_forest("<q/>"))])
        __, conflicts = detect_conflicts([a, b], structure=oracle)
        ordered = order_conflicts(conflicts, oracle)
        # type 1 among repN first, then type 4 (repN overriding), then
        # the order conflict
        assert ordered[0].conflict_type == \
            ConflictType.REPEATED_MODIFICATION
        assert ordered[-1].conflict_type == ConflictType.INSERTION_ORDER


class TestResolution:
    def test_asymmetric_default_excludes_overridden(self, small_doc):
        oracle = DocumentOracle(small_doc)
        overrider = PUL([Delete(2)], origin="a")
        victim = PUL([Rename(2, "x")], origin="b")
        result = reconcile([overrider, victim], policies={},
                           structure=oracle)
        assert Delete(2) in result
        assert Rename(2, "x") not in result

    def test_asymmetric_protected_victim_excludes_overrider(self,
                                                            small_doc):
        oracle = DocumentOracle(small_doc)
        overrider = PUL([Delete(2)], origin="a")
        victim = PUL([ReplaceValue(3, "keep")], origin="b")
        policies = {"b": ProducerPolicy(preserve_inserted_data=True)}
        result = reconcile([overrider, victim], policies=policies,
                           structure=oracle)
        assert ReplaceValue(3, "keep") in result
        assert Delete(2) not in result

    def test_asymmetric_unsolvable(self, small_doc):
        oracle = DocumentOracle(small_doc)
        overrider = PUL([Delete(2)], origin="a")
        victim = PUL([ReplaceValue(3, "keep")], origin="b")
        policies = {"a": ProducerPolicy(preserve_removed_data=True),
                    "b": ProducerPolicy(preserve_inserted_data=True)}
        with pytest.raises(ReconciliationError):
            reconcile([overrider, victim], policies=policies,
                      structure=oracle)

    def test_order_conflict_generates_merged_insert(self, small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([InsertAfter(2, parse_forest("<p/>"))], origin="a")
        b = PUL([InsertAfter(2, parse_forest("<q/>"))], origin="b")
        result = reconcile([a, b], policies={}, structure=oracle)
        assert len(result) == 1
        (op,) = result
        assert op.op_name == "insertAfter"
        assert set(op.param_key().split("/><")) and len(op.trees) == 2

    def test_order_policy_takes_anchor_side(self, small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([InsertAfter(2, parse_forest("<p/>"))], origin="a")
        b = PUL([InsertAfter(2, parse_forest("<q/>"))], origin="b")
        policies = {"b": ProducerPolicy(preserve_insertion_order=True)}
        result = reconcile([a, b], policies=policies, structure=oracle)
        (op,) = result
        # ins→ content adjacent to the anchor comes first
        assert op.param_key() == "<q/><p/>"

    def test_order_policy_for_trailing_anchor(self, small_doc):
        from repro.pul.ops import InsertIntoAsLast
        oracle = DocumentOracle(small_doc)
        a = PUL([InsertIntoAsLast(0, parse_forest("<p/>"))], origin="a")
        b = PUL([InsertIntoAsLast(0, parse_forest("<q/>"))], origin="b")
        policies = {"b": ProducerPolicy(preserve_insertion_order=True)}
        result = reconcile([a, b], policies=policies, structure=oracle)
        (op,) = result
        # ins↘ content adjacent to the end comes last
        assert op.param_key() == "<p/><q/>"

    def test_order_two_demands_fail(self, small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([InsertAfter(2, parse_forest("<p/>"))], origin="a")
        b = PUL([InsertAfter(2, parse_forest("<q/>"))], origin="b")
        policies = {"a": ProducerPolicy(preserve_insertion_order=True),
                    "b": ProducerPolicy(preserve_insertion_order=True)}
        with pytest.raises(ReconciliationError):
            reconcile([a, b], policies=policies, structure=oracle)

    def test_keep_one_prefers_protected(self, small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([ReplaceValue(3, "first")], origin="a")
        b = PUL([ReplaceValue(3, "second")], origin="b")
        policies = {"b": ProducerPolicy(preserve_inserted_data=True)}
        result = reconcile([a, b], policies=policies, structure=oracle)
        assert ReplaceValue(3, "second") in result
        assert ReplaceValue(3, "first") not in result

    def test_keep_one_two_protected_different_content_fails(self,
                                                            small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([ReplaceValue(3, "first")], origin="a")
        b = PUL([ReplaceValue(3, "second")], origin="b")
        policies = {"a": ProducerPolicy(preserve_inserted_data=True),
                    "b": ProducerPolicy(preserve_inserted_data=True)}
        with pytest.raises(ReconciliationError):
            reconcile([a, b], policies=policies, structure=oracle)

    def test_cascade_auto_solves(self, small_doc):
        oracle = DocumentOracle(small_doc)
        # del(0) overrides both renames (type 5); once the renames are
        # excluded, their type-1 conflict is automatically solved
        a = PUL([Delete(5)], origin="a")
        b = PUL([Rename(8, "x")], origin="b")
        c = PUL([Rename(8, "y")], origin="c")
        result = reconcile([a, b, c], policies={}, structure=oracle)
        assert result == PUL([Delete(5)])

    def test_attribute_conflict_keeps_one(self, small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([InsertAttributes(2, [Node.attribute("k", "1")])],
                origin="a")
        b = PUL([InsertAttributes(2, [Node.attribute("k", "2")])],
                origin="b")
        result = reconcile([a, b], policies={}, structure=oracle)
        assert len(result) == 1

    def test_reconciled_pul_is_applicable_and_conflict_free(self,
                                                            small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([Delete(2), InsertAfter(4, parse_forest("<p/>"))],
                origin="a")
        b = PUL([Rename(2, "x"), InsertAfter(4, parse_forest("<q/>"))],
                origin="b")
        result = reconcile([a, b], policies={}, structure=oracle)
        assert result.is_applicable(small_doc)
        __, conflicts = detect_conflicts([result, PUL()],
                                         structure=oracle)
        assert conflicts == []

    def test_no_conflicts_returns_merge(self, small_doc):
        oracle = DocumentOracle(small_doc)
        a = PUL([Rename(2, "x")], origin="a")
        b = PUL([ReplaceValue(7, "y")], origin="b")
        result = reconcile([a, b], policies={}, structure=oracle)
        assert len(result) == 2
