"""End-to-end tests of the decoupled producer/executor architecture."""

import pytest

from repro.distributed import Executor, Producer
from repro.errors import ReproError
from repro.integration import ProducerPolicy
from repro.xdm.compare import documents_equal, nodes_equal

ARTICLE = ("<article><title>T</title><authors><author>A</author></authors>"
           "</article>")


@pytest.fixture
def executor():
    return Executor(ARTICLE)


def checked_out(executor, name, policy=None):
    executor.register_producer(name, policy)
    producer = Producer(name)
    producer.checkout(executor.snapshot_for(name))
    return producer


class TestCheckout:
    def test_snapshot_reproduces_document(self, executor):
        producer = checked_out(executor, "p1")
        assert documents_equal(producer.document, executor.document,
                               with_ids=True)

    def test_id_spaces_disjoint(self, executor):
        p1 = checked_out(executor, "p1")
        p2 = checked_out(executor, "p2")
        a = {p1._new_id_allocator.allocate() for __ in range(20)}
        b = {p2._new_id_allocator.allocate() for __ in range(20)}
        assert not a & b

    def test_unknown_producer_rejected(self, executor):
        with pytest.raises(ReproError):
            executor.snapshot_for("nobody")

    def test_duplicate_registration_rejected(self, executor):
        executor.register_producer("p1")
        with pytest.raises(ReproError):
            executor.register_producer("p1")

    def test_producer_requires_checkout(self):
        with pytest.raises(ReproError):
            Producer("p").produce("delete node /article/title")


class TestSingleProducer:
    def test_produce_does_not_touch_local_copy(self, executor):
        producer = checked_out(executor, "p1")
        before = documents_equal(producer.document, executor.document)
        producer.produce("delete node /article/title")
        assert documents_equal(producer.document, executor.document)
        assert before

    def test_roundtrip_execution(self, executor):
        producer = checked_out(executor, "p1")
        pul = producer.produce(
            'replace value of node /article/title/text() with "T2"')
        message = producer.message_for(pul)
        executor.execute(executor.receive(message))
        assert "<title>T2</title>" in executor.text()
        assert executor.version == 1

    def test_streaming_and_inmemory_executors_agree(self):
        for streaming in (True, False):
            executor = Executor(ARTICLE, streaming=streaming)
            producer = checked_out(executor, "p1")
            pul = producer.produce(
                "insert node <author>B</author> as last into "
                "/article/authors")
            executor.execute(executor.receive(producer.message_for(pul)))
            assert "<author>B</author>" in executor.text()

    def test_reduce_first(self, executor):
        producer = checked_out(executor, "p1")
        pul = producer.produce(
            "rename node /article/title as dead, "
            "replace node /article/title with <title>new</title>")
        executor.execute(executor.receive(producer.message_for(pul)),
                         reduce_first=True)
        assert "<title>new</title>" in executor.text()


class TestParallel:
    def test_conflict_free_merge(self, executor):
        p1 = checked_out(executor, "p1")
        p2 = checked_out(executor, "p2")
        m1 = p1.message_for(p1.produce(
            "insert node <year>2011</year> as last into /article"))
        m2 = p2.message_for(p2.produce(
            'replace value of node /article/title/text() with "T2"'))
        version, conflicts = executor.execute_parallel([m1, m2])
        assert version == 1
        assert conflicts == []
        assert "<year>2011</year>" in executor.text()
        assert "T2" in executor.text()

    def test_conflicting_edits_reconciled(self, executor):
        p1 = checked_out(executor, "p1",
                         ProducerPolicy(preserve_inserted_data=True))
        p2 = checked_out(executor, "p2")
        m1 = p1.message_for(p1.produce(
            'replace value of node /article/title/text() with "mine"'))
        m2 = p2.message_for(p2.produce(
            'replace value of node /article/title/text() with "theirs"'))
        __, conflicts = executor.execute_parallel([m1, m2])
        assert len(conflicts) == 1
        assert "mine" in executor.text()

    def test_mixed_base_versions_rejected(self, executor):
        p1 = checked_out(executor, "p1")
        m1 = p1.message_for(p1.produce("delete node /article/title"))
        executor.execute(executor.receive(m1))
        p2 = checked_out(executor, "p2")  # checks out version 1
        m2 = p2.message_for(p2.produce("delete node /article/authors"))
        with pytest.raises(ReproError):
            executor.execute_parallel([m1, m2])


class TestSequential:
    def test_disconnected_session_converges(self, executor):
        producer = checked_out(executor, "laptop")
        session = [
            producer.produce_and_apply(
                "insert node <sec><p>one</p></sec> as last into /article"),
            producer.produce_and_apply(
                "insert node <p>two</p> as last into /article/sec"),
            producer.produce_and_apply(
                'replace value of node /article/sec/p[1]/text() '
                'with "ONE"'),
        ]
        messages = [producer.message_for(pul) for pul in session]
        executor.execute_sequential(messages)
        assert nodes_equal(executor.document.root, producer.document.root,
                           with_ids=True)

    def test_aggregated_session_converges(self, executor):
        producer = checked_out(executor, "laptop")
        session = [
            producer.produce_and_apply(
                "insert node <sec><p>one</p></sec> as last into /article"),
            producer.produce_and_apply(
                "insert node <p>two</p> as last into /article/sec"),
        ]
        delta = producer.aggregate_session(session)
        executor.execute_sequential([producer.message_for(delta)])
        assert nodes_equal(executor.document.root, producer.document.root,
                           with_ids=True)

    def test_messages_sorted_by_sequence(self, executor):
        producer = checked_out(executor, "laptop")
        first = producer.produce_and_apply(
            "insert node <sec/> as last into /article")
        second = producer.produce_and_apply(
            "rename node /article/sec as section")
        m1 = producer.message_for(first)
        m2 = producer.message_for(second)
        executor.execute_sequential([m2, m1])  # out of order on purpose
        assert "<section/>" in executor.text()
