"""Distributed layer: message round-trips, shard dispatch ordering, and
worker failure mid-batch."""

import pytest

import repro.pipeline.parallel as parallel_mod
from repro.distributed.executor import Executor
from repro.distributed.messages import (
    DocumentSnapshot,
    PULMessage,
    ShardEnvelope,
)
from repro.distributed.network import SimulatedNetwork
from repro.distributed.producer import Producer
from repro.pul.ops import InsertIntoAsLast, Rename, ReplaceValue
from repro.pul.pul import PUL
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.xdm.node import Node
from repro.xdm.serializer import serialize

DOC = ("<bib><paper><title>T1</title><authors><author>A</author>"
       "</authors></paper><paper><title>T2</title></paper>"
       "<note>n</note></bib>")


@pytest.fixture
def executor():
    return Executor(DOC)


@pytest.fixture
def pul(executor):
    """Operations on four structurally independent targets (the two
    titles, the author text, the note), so sharding yields > 1 shard."""
    elements = {}
    texts = {}
    for node in executor.document.nodes():
        if node.is_element:
            elements.setdefault(node.name, []).append(node)
        elif node.is_text:
            texts.setdefault(node.value, node)
    title1, title2 = elements["title"]
    ops = [
        Rename(title1.node_id, "headline"),
        InsertIntoAsLast(title2.node_id, [Node.text("!")]),
        ReplaceValue(texts["A"].node_id, "Anna"),
        ReplaceValue(texts["n"].node_id, "updated"),
    ]
    pul = PUL(ops, origin="alice")
    pul.attach_labels(executor.labeling)
    return pul


class TestMessageRoundTrips:
    def test_pul_message_producer_to_executor(self, executor):
        executor.register_producer("alice")
        producer = Producer("alice")
        producer.checkout(executor.snapshot_for("alice"))
        produced = producer.produce("delete nodes //author")
        message = producer.message_for(produced)
        received = executor.receive(message)
        assert received == produced
        assert received.origin == "alice"
        assert set(received.labels) == set(produced.labels)

    def test_snapshot_round_trip(self, executor):
        executor.register_producer("bob")
        snapshot = executor.snapshot_for("bob")
        producer = Producer("bob")
        document = producer.checkout(snapshot)
        assert serialize(document) == serialize(executor.document)
        assert snapshot.size_bytes() == \
            len(snapshot.text.encode("utf-8"))

    def test_shard_envelope_round_trip(self, pul):
        envelope = ShardEnvelope(pul_to_xml(pul), origin="alice",
                                 shard_index=2, shard_count=4,
                                 base_version=7)
        decoded = pul_from_xml(envelope.payload)
        assert decoded == pul
        assert set(decoded.labels) == set(pul.labels)
        assert envelope.size_bytes() == \
            len(envelope.payload.encode("utf-8"))
        assert "2/4" in repr(envelope)

    def test_shard_envelope_rejects_bad_index(self):
        with pytest.raises(ValueError):
            ShardEnvelope("<pul/>", origin=None, shard_index=4,
                          shard_count=4)


class TestShardDispatch:
    def test_envelopes_in_shard_order(self, executor, pul):
        envelopes = executor.dispatch_shards(pul, 4)
        assert [e.shard_index for e in envelopes] == \
            list(range(len(envelopes)))
        assert all(e.shard_count == len(envelopes) for e in envelopes)
        assert all(e.base_version == executor.version for e in envelopes)

    def test_dispatch_covers_the_whole_pul(self, executor, pul):
        envelopes = executor.dispatch_shards(pul, 4)
        shipped = sorted(
            op.describe() for envelope in envelopes
            for op in pul_from_xml(envelope.payload))
        assert shipped == sorted(op.describe() for op in pul)

    def test_network_records_one_transfer_per_shard_in_order(
            self, executor, pul):
        network = SimulatedNetwork()
        envelopes = executor.dispatch_shards(pul, 4, network=network)
        shard_log = [r for r in network.log if r.kind == "shard"]
        assert len(shard_log) == len(envelopes)
        assert [r.receiver for r in shard_log] == \
            ["reducer-{}".format(i) for i in range(len(envelopes))]
        assert network.bytes_transferred == \
            sum(e.size_bytes() for e in envelopes)

    def test_dispatch_does_not_mutate_the_pul(self, executor, pul):
        labels_before = dict(pul.labels)
        executor.dispatch_shards(pul, 4)
        assert pul.labels == labels_before


class TestExecutePipeline:
    def test_equivalent_to_sequential_executor(self, pul):
        parallel_exec = Executor(DOC)
        sequential_exec = Executor(DOC)
        version, outcome = parallel_exec.execute_pipeline(
            pul.copy(), workers=4, backend="thread")
        sequential_exec.execute(pul.copy(), reduce_first=True)
        assert version == 1
        assert parallel_exec.text() == sequential_exec.text()
        assert outcome.failures == []

    def test_accepts_pul_message(self, executor, pul):
        reference = Executor(DOC)
        reference.execute(pul.copy(), reduce_first=True)
        message = PULMessage(pul_to_xml(pul), origin="alice")
        version, __ = executor.execute_pipeline(message, workers=2,
                                                backend="serial")
        assert version == 1
        assert executor.text() == reference.text()

    def test_worker_failure_mid_batch_still_converges(
            self, monkeypatch, executor, pul):
        reference = Executor(DOC)
        reference.execute(pul.copy(), reduce_first=True)
        real = parallel_mod._reduce_shard
        crashed = []

        def flaky(shard, deterministic):
            if not crashed:
                crashed.append(True)
                raise RuntimeError("worker crashed mid-batch")
            return real(shard, deterministic)

        monkeypatch.setattr(parallel_mod, "_reduce_shard", flaky)
        version, outcome = executor.execute_pipeline(
            pul.copy(), workers=4, backend="thread")
        assert crashed
        assert len(outcome.failures) == 1
        assert version == 1
        assert executor.text() == reference.text()
