"""Failure paths of the distributed execution layer.

PR 1 added mid-batch failure recovery (crashed workers, broken pools,
poisoned shards) but only smoke-tested it; these tests pin the contract:

* a failed shard is recomputed in-process and recorded as telemetry —
  the batch still converges to the sequential result;
* ``retry_serial=False`` propagates instead of recovering;
* a broken process pool (on ``submit`` or on ``result``) is discarded so
  the next batch gets a fresh pool;
* domain errors (``ReproError``) are *not* swallowed by recovery — a
  poisoned shard fails the batch loudly on every backend;
* the executor's warm-pool cache survives failures and stays keyed by
  ``(workers, backend)``.
"""

from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.pipeline.parallel as parallel_mod
from repro.distributed.executor import Executor
from repro.errors import ReproError
from repro.pipeline.parallel import ParallelReducer
from repro.pipeline.shard import shard_pul
from repro.pul.ops import InsertIntoAsLast, Rename, ReplaceValue
from repro.pul.pul import PUL
from repro.pul.serialize import pul_to_xml
from repro.reduction import reduce_deterministic
from repro.xdm.node import Node

DOC = ("<bib><paper><title>T1</title><authors><author>A</author>"
       "</authors></paper><paper><title>T2</title></paper>"
       "<note>n</note></bib>")


def _make_pul(executor):
    elements = {}
    texts = {}
    for node in executor.document.nodes():
        if node.is_element:
            elements.setdefault(node.name, []).append(node)
        elif node.is_text:
            texts.setdefault(node.value, node)
    title1, title2 = elements["title"]
    pul = PUL([
        Rename(title1.node_id, "headline"),
        InsertIntoAsLast(title2.node_id, [Node.text("!")]),
        ReplaceValue(texts["A"].node_id, "Anna"),
        ReplaceValue(texts["n"].node_id, "updated"),
    ], origin="alice")
    pul.attach_labels(executor.labeling)
    return pul


@pytest.fixture
def executor():
    with Executor(DOC) as executor:
        yield executor


@pytest.fixture
def pul(executor):
    return _make_pul(executor)


def _flaky(real, crash_times):
    """A worker that raises for the first ``crash_times`` calls."""
    crashes = []

    def worker(shard, deterministic):
        if len(crashes) < crash_times:
            crashes.append(True)
            raise RuntimeError("worker died mid-batch")
        return real(shard, deterministic)

    worker.crashes = crashes
    return worker


class _BrokenFuture:
    def result(self):
        raise BrokenProcessPool("worker process died")


class _PoolBrokenOnResult:
    """Accepts submissions, then reports the pool broken per-future."""

    def __init__(self):
        self.submissions = 0
        self.shutdowns = 0

    def submit(self, fn, *args):
        self.submissions += 1
        return _BrokenFuture()

    def shutdown(self, *args, **kwargs):
        self.shutdowns += 1


class _PoolBrokenOnSubmit(_PoolBrokenOnResult):
    def submit(self, fn, *args):
        self.submissions += 1
        raise BrokenProcessPool("pool already dead")


class TestWorkerDeathMidBatch:
    def test_failed_shards_recovered_and_recorded(self, monkeypatch, pul):
        flaky = _flaky(parallel_mod._reduce_shard, crash_times=2)
        monkeypatch.setattr(parallel_mod, "_reduce_shard", flaky)
        reducer = ParallelReducer(workers=4, backend="thread")
        with reducer:
            outcome = reducer.reduce(pul)
        assert len(flaky.crashes) == 2
        assert len(outcome.failures) == 2
        assert sorted(f.shard_index for f in outcome.failures) == \
            sorted(set(f.shard_index for f in outcome.failures))
        assert all(isinstance(f.error, RuntimeError)
                   for f in outcome.failures)
        assert "shard=" in repr(outcome.failures[0])
        # the batch still equals the sequential reduction
        from repro.pipeline.merge import merge_shards
        assert merge_shards(outcome.reduced) == reduce_deterministic(pul)

    def test_retry_serial_false_propagates(self, monkeypatch, pul):
        flaky = _flaky(parallel_mod._reduce_shard, crash_times=1)
        monkeypatch.setattr(parallel_mod, "_reduce_shard", flaky)
        reducer = ParallelReducer(workers=4, backend="thread",
                                  retry_serial=False)
        with reducer:
            with pytest.raises(ReproError, match="workers failed"):
                reducer.reduce(pul)

    def test_domain_errors_never_swallowed(self, monkeypatch, pul):
        def poisoned(shard, deterministic):
            raise ReproError("poisoned shard")

        monkeypatch.setattr(parallel_mod, "_reduce_shard", poisoned)
        reducer = ParallelReducer(workers=4, backend="thread")
        with reducer:
            with pytest.raises(ReproError, match="poisoned"):
                reducer.reduce(pul)

    def test_wire_mode_failures_recovered(self, monkeypatch, pul):
        flaky = _flaky(parallel_mod._reduce_shard_wire, crash_times=1)
        monkeypatch.setattr(parallel_mod, "_reduce_shard_wire", flaky)
        payloads = [pul_to_xml(s) for s in shard_pul(pul, 4)]
        reducer = ParallelReducer(workers=4, backend="thread")
        with reducer:
            reduced, failures = reducer.reduce_wire(payloads)
        assert len(failures) == 1
        assert len(reduced) == len(payloads)
        assert all(isinstance(p, str) for p in reduced)


class TestBrokenPool:
    def test_pool_broken_on_result_recovers_and_is_discarded(self, pul):
        reducer = ParallelReducer(workers=4, backend="process")
        fake = _PoolBrokenOnResult()
        reducer._pool = fake  # a pool whose workers have already died
        outcome = reducer.reduce(pul)
        assert outcome.failures
        assert all(isinstance(f.error, BrokenProcessPool)
                   for f in outcome.failures)
        # every shard was recomputed in-process
        from repro.pipeline.merge import merge_shards
        assert merge_shards(outcome.reduced) == reduce_deterministic(pul)
        # the broken pool was shut down and dropped
        assert fake.shutdowns >= 1
        assert reducer._pool is None
        reducer.close()

    def test_pool_broken_on_submit_recovers(self, pul):
        reducer = ParallelReducer(workers=4, backend="process")
        fake = _PoolBrokenOnSubmit()
        reducer._pool = fake
        outcome = reducer.reduce(pul)
        assert len(outcome.failures) == 1
        assert outcome.failures[0].shard_index is None
        from repro.pipeline.merge import merge_shards
        assert merge_shards(outcome.reduced) == reduce_deterministic(pul)
        reducer.close()

    def test_fresh_pool_after_breakage(self, pul):
        """After a broken-pool incident the next reduce builds a real
        pool again (here: the thread pool class, to stay in-process)."""
        reducer = ParallelReducer(workers=2, backend="thread")
        with reducer:
            first_pool = reducer._get_pool()
            reducer.close()
            assert reducer._pool is None
            outcome = reducer.reduce(pul)
            assert reducer._pool is not None
            assert reducer._pool is not first_pool
            assert outcome.failures == []


class TestExecutorPipelineFailures:
    def test_executor_converges_despite_worker_death(self, monkeypatch):
        flaky = _flaky(parallel_mod._reduce_shard, crash_times=1)
        monkeypatch.setattr(parallel_mod, "_reduce_shard", flaky)
        with Executor(DOC) as victim, Executor(DOC) as reference:
            pul = _make_pul(victim)
            reference.execute(pul.copy(), reduce_first=True)
            version, outcome = victim.execute_pipeline(
                pul.copy(), workers=4, backend="thread")
            assert version == 1
            assert len(outcome.failures) == 1
            assert victim.text() == reference.text()

    def test_warm_pool_cache_survives_failures(self, monkeypatch):
        flaky = _flaky(parallel_mod._reduce_shard, crash_times=1)
        monkeypatch.setattr(parallel_mod, "_reduce_shard", flaky)
        with Executor(DOC) as executor:
            pul = _make_pul(executor)
            executor.execute_pipeline(pul.copy(), workers=4,
                                      backend="thread")
            assert set(executor._reducers) == {(4, "thread")}
            # second batch reuses the same warm reducer and succeeds
            second = PUL([Rename(executor.document.root.node_id, "lib")])
            second.attach_labels(executor.labeling)
            version, outcome = executor.execute_pipeline(
                second, workers=4, backend="thread")
            assert version == 2
            assert outcome.failures == []
            assert set(executor._reducers) == {(4, "thread")}
            assert executor.text().startswith("<lib>")

    def test_executor_close_shuts_reducers_idempotently(self):
        executor = Executor(DOC)
        pul = _make_pul(executor)
        executor.execute_pipeline(pul, workers=2, backend="thread")
        assert executor._reducers
        executor.close()
        assert executor._reducers == {}
        executor.close()  # idempotent
