"""Tests for the simulated network and messages."""

from repro.distributed.messages import DocumentSnapshot, PULMessage
from repro.distributed.network import SimulatedNetwork


class TestMessages:
    def test_pul_message_size(self):
        message = PULMessage("<pul/>", origin="p", sequence=2,
                             base_version=1)
        assert message.size_bytes() == 6
        assert message.sequence == 2

    def test_snapshot(self):
        snapshot = DocumentSnapshot("<a/>", version=3, id_start=1,
                                    id_stride=2)
        assert snapshot.size_bytes() == 4
        assert snapshot.version == 3

    def test_utf8_size(self):
        message = PULMessage("é", origin="p")
        assert message.size_bytes() == 2


class TestNetwork:
    def test_clock_advances_with_latency_and_bandwidth(self):
        network = SimulatedNetwork(latency=0.5, bandwidth=100)
        network.send("a", "b", PULMessage("x" * 50, origin="a"))
        assert network.clock == 0.5 + 0.5

    def test_log_and_summary(self):
        network = SimulatedNetwork(latency=0.0, bandwidth=1000)
        network.send("a", "b", PULMessage("12345", origin="a"))
        network.send("b", "a", PULMessage("123", origin="b"),
                     kind="checkout")
        summary = network.summary()
        assert summary["transfers"] == 2
        assert summary["bytes"] == 8
        assert set(summary["by_kind"]) == {"pul", "checkout"}

    def test_bytes_transferred(self):
        network = SimulatedNetwork()
        network.send("a", "b", PULMessage("1234", origin="a"))
        assert network.bytes_transferred == 4
