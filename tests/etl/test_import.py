"""Streaming bulk import: chunked group-committed loads with a
validation quality gate."""

import pytest

from repro.errors import ImportAbortedError, NotLeaderError, ReproError
from repro.etl import BulkImporter, iter_sources
from repro.store import DocumentStore

DOC = "<doc><items><i/></items></doc>"


def corpus(tmp_path, count=5, subdir="corpus"):
    root = tmp_path / subdir
    root.mkdir()
    for index in range(count):
        (root / "doc{}.xml".format(index)).write_text(
            "<r><v>{}</v></r>".format(index), encoding="utf-8")
    return root


class TestSources:
    def test_directories_walk_recursively_and_sorted(self, tmp_path):
        root = corpus(tmp_path, count=2)
        nested = root / "sub"
        nested.mkdir()
        (nested / "deep.xml").write_text("<r/>", encoding="utf-8")
        (root / "notes.txt").write_text("ignored", encoding="utf-8")
        pairs = list(iter_sources([str(root)]))
        assert [doc_id for doc_id, __ in pairs] == \
            ["doc0", "doc1", "deep"]

    def test_files_are_taken_verbatim(self, tmp_path):
        path = tmp_path / "one.xml"
        path.write_text("<r/>", encoding="utf-8")
        assert list(iter_sources([str(path)])) == \
            [("one", str(path))]

    def test_missing_operand_is_a_typed_error_not_a_reject(
            self, tmp_path):
        with pytest.raises(ReproError) as info:
            list(iter_sources([str(tmp_path / "nope")]))
        assert "no such import source" in str(info.value)


class TestImporter:
    def test_loads_a_corpus_durably(self, tmp_path):
        root = corpus(tmp_path)
        wal = tmp_path / "wal"
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=str(wal)) as store:
            report = BulkImporter(store.bulk_load).run([str(root)])
            assert report.scanned == report.loaded == 5
            assert report.rejected == []
            assert report.chunks == 1
            assert store.text("doc3") == "<r><v>3</v></r>"
        # the chunk survives a restart: bulk loads are WAL-first
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=str(wal)) as store:
            assert sorted(store.doc_ids()) == \
                ["doc0", "doc1", "doc2", "doc3", "doc4"]

    def test_chunking_bounds_each_group_commit(self, tmp_path):
        root = corpus(tmp_path, count=5)
        chunks = []
        importer = BulkImporter(
            lambda chunk: chunks.append(len(chunk)) or
            {"loaded": len(chunk), "nodes": 0}, chunk_docs=2)
        report = importer.run([str(root)])
        assert chunks == [2, 2, 1]
        assert report.chunks == 3 and report.loaded == 5

    def test_chunk_bytes_flushes_large_documents_early(self, tmp_path):
        root = tmp_path / "big"
        root.mkdir()
        for index in range(3):
            (root / "b{}.xml".format(index)).write_text(
                "<r>{}</r>".format("x" * 2048), encoding="utf-8")
        chunks = []
        BulkImporter(
            lambda chunk: chunks.append(len(chunk)) or {},
            chunk_docs=100, chunk_bytes=2048).run([str(root)])
        assert chunks == [1, 1, 1]

    def test_doc_prefix_namespaces_the_corpus(self, tmp_path):
        root = corpus(tmp_path, count=2)
        with DocumentStore(workers=1, backend="serial") as store:
            BulkImporter(store.bulk_load,
                         doc_prefix="feed/").run([str(root)])
            assert sorted(store.doc_ids()) == \
                ["feed/doc0", "feed/doc1"]

    def test_invalid_documents_are_rejected_not_fatal(self, tmp_path):
        root = corpus(tmp_path, count=2)
        (root / "broken.xml").write_text("<r><open>",
                                         encoding="utf-8")
        with DocumentStore(workers=1, backend="serial") as store:
            report = BulkImporter(store.bulk_load).run([str(root)])
            assert report.loaded == 2
            assert len(report.rejected) == 1
            assert "invalid xml" in report.rejected[0]["reason"]
            assert report.to_dict()["rejected"] == 1

    def test_duplicate_ids_within_a_run_are_rejected(self, tmp_path):
        left = corpus(tmp_path, count=1, subdir="left")
        right = corpus(tmp_path, count=1, subdir="right")
        with DocumentStore(workers=1, backend="serial") as store:
            report = BulkImporter(store.bulk_load).run(
                [str(left), str(right)])
            assert report.loaded == 1
            assert "duplicate" in report.rejected[0]["reason"]

    def test_max_errors_aborts_typed_and_keeps_loaded_chunks(
            self, tmp_path):
        root = tmp_path / "dirty"
        root.mkdir()
        (root / "a.xml").write_text("<r/>", encoding="utf-8")
        (root / "x.xml").write_text("<bad", encoding="utf-8")
        (root / "y.xml").write_text("<bad", encoding="utf-8")
        wal = tmp_path / "wal"
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=str(wal)) as store:
            with pytest.raises(ImportAbortedError) as info:
                BulkImporter(store.bulk_load, chunk_docs=1,
                             max_errors=1).run([str(root)])
            assert info.value.loaded == 1      # "a" was group-committed
            assert info.value.rejected == 2
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=str(wal)) as store:
            assert store.doc_ids() == ["a"]  # durable despite abort

    def test_chunk_docs_must_be_positive(self):
        with pytest.raises(ReproError):
            BulkImporter(lambda chunk: {}, chunk_docs=0)


class TestBulkLoad:
    def test_duplicate_against_the_store_fails_the_whole_chunk(
            self, tmp_path):
        with DocumentStore(workers=1, backend="serial") as store:
            store.open("dup", DOC)
            with pytest.raises(ReproError):
                store.bulk_load([{"doc_id": "fresh", "xml": DOC},
                                 {"doc_id": "dup", "xml": DOC}])
            # atomic: the non-duplicate half was not installed either
            assert store.doc_ids() == ["dup"]

    def test_chunk_internal_duplicates_fail_before_any_install(self):
        with DocumentStore(workers=1, backend="serial") as store:
            with pytest.raises(ReproError):
                store.bulk_load([{"doc_id": "d", "xml": DOC},
                                 {"doc_id": "d", "xml": DOC}])
            assert store.doc_ids() == []

    def test_pairs_and_missing_fields(self):
        with DocumentStore(workers=1, backend="serial") as store:
            result = store.bulk_load([("t1", DOC)])
            assert result == {"loaded": 1, "nodes": result["nodes"],
                              "doc_ids": ["t1"]}
            with pytest.raises(ReproError):
                store.bulk_load([{"doc_id": "t2"}])

    def test_loaded_chunk_reaches_the_change_feed(self, tmp_path):
        with DocumentStore(workers=1, backend="serial",
                           durability="log",
                           wal_dir=str(tmp_path / "wal")) as store:
            store.enable_replication()
            store.bulk_load([{"doc_id": "a", "xml": DOC},
                             {"doc_id": "b", "xml": DOC}])
            records, __, __ = store.replication.read_from(0)
            assert [(r["record"]["kind"], r["record"]["doc"]["doc_id"])
                    for r in records] == [("open", "a"), ("open", "b")]

    def test_replicas_refuse_bulk_loads(self):
        from repro.cluster import ReplicaStore

        with ReplicaStore(leader_address="127.0.0.1:7000", workers=1,
                          backend="serial") as replica:
            with pytest.raises(NotLeaderError):
                replica.bulk_load([{"doc_id": "d", "xml": DOC}])
