"""The ``repro store import`` / ``repro store export`` commands, local
(``--wal-dir``) and remote (``--target``)."""

import io
import os

from repro.cli import main
from repro.store import DocumentStore
from tests.cluster.harness import ServerThread


def corpus(tmp_path, count=3):
    root = tmp_path / "corpus"
    root.mkdir()
    for index in range(count):
        (root / "doc{}.xml".format(index)).write_text(
            "<r><v>{}</v></r>".format(index), encoding="utf-8")
    return root


def run(argv):
    out = io.StringIO()
    code = main(argv, out)
    return code, out.getvalue()


class TestLocal:
    def test_import_then_export_round_trips(self, tmp_path):
        root = corpus(tmp_path)
        wal = str(tmp_path / "wal")
        code, output = run(["store", "import", str(root),
                            "--wal-dir", wal])
        assert code == 0
        assert "imported 3 of 3" in output
        out_dir = str(tmp_path / "dump")
        code, output = run(["store", "export", "--wal-dir", wal,
                            "--out-dir", out_dir])
        assert code == 0
        assert "exported 3 document(s)" in output
        assert sorted(os.listdir(out_dir)) == \
            ["doc0.xml", "doc1.xml", "doc2.xml"]
        with open(os.path.join(out_dir, "doc1.xml"),
                  encoding="utf-8") as handle:
            assert handle.read() == "<r><v>1</v></r>"

    def test_rejects_are_reported_and_tolerated(self, tmp_path):
        root = corpus(tmp_path)
        (root / "bad.xml").write_text("<r", encoding="utf-8")
        code, output = run(["store", "import", str(root),
                            "--wal-dir", str(tmp_path / "wal")])
        assert code == 0
        assert "reject" in output and "bad.xml" in output
        assert "imported 3 of 4" in output

    def test_max_errors_aborts_with_the_stable_code(self, tmp_path,
                                                    capsys):
        root = corpus(tmp_path, count=1)
        (root / "bad.xml").write_text("<r", encoding="utf-8")
        code, __ = run(["store", "import", str(root),
                        "--wal-dir", str(tmp_path / "wal"),
                        "--max-errors", "0"])
        assert code == 2
        assert "error [import-aborted]" in capsys.readouterr().err

    def test_export_filter_and_verbose_paging(self, tmp_path):
        root = corpus(tmp_path)
        wal = str(tmp_path / "wal")
        assert run(["store", "import", str(root),
                    "--wal-dir", wal])[0] == 0
        code, output = run(["store", "export", "--wal-dir", wal,
                            "--docs", "doc2", "--verbose",
                            "--page-size", "1"])
        assert code == 0
        assert "exported 1 document(s)" in output
        assert "page 1: 1 doc(s)" in output

    def test_doc_prefix_is_applied(self, tmp_path):
        root = corpus(tmp_path, count=1)
        wal = str(tmp_path / "wal")
        assert run(["store", "import", str(root), "--wal-dir", wal,
                    "--doc-prefix", "crawl/"])[0] == 0
        with DocumentStore(workers=1, backend="serial",
                           durability="log", wal_dir=wal) as store:
            assert store.doc_ids() == ["crawl/doc0"]

    def test_needs_a_target_or_a_wal_dir(self, tmp_path, capsys):
        root = corpus(tmp_path, count=1)
        code, __ = run(["store", "import", str(root)])
        assert code == 2
        assert "--target" in capsys.readouterr().err


class TestRemote:
    def test_import_and_export_against_a_server(self, tmp_path):
        root = corpus(tmp_path)
        store = DocumentStore(workers=1, backend="serial",
                              durability="log",
                              wal_dir=str(tmp_path / "wal"))
        store.enable_replication()
        with ServerThread(store) as node:
            code, output = run(["store", "import", str(root),
                                "--target", node.address])
            assert code == 0
            assert "imported 3 of 3" in output
            assert store.doc_ids() == ["doc0", "doc1", "doc2"]
            out_dir = str(tmp_path / "dump")
            code, output = run(["store", "export",
                                "--target", node.address,
                                "--out-dir", out_dir])
            assert code == 0
            # a replicating server pairs the dump with a resume token
            assert "resume token: " in output
            assert sorted(os.listdir(out_dir)) == \
                ["doc0.xml", "doc1.xml", "doc2.xml"]
