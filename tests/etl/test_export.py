"""Resumable corpus export: pinned-version pages, cursor resume, and
the export-token / change-feed pairing."""

import os

import pytest

from repro.api.dispatch import StoreDispatcher
from repro.cdc import ChangeFeed, decode_token
from repro.errors import ReproError
from repro.etl import export_corpus, safe_filename
from repro.store import DocumentStore

DOC = "<doc><items/></doc>"


def loaded_store(tmp_path=None, count=5, replicate=False):
    kwargs = {"workers": 1, "backend": "serial"}
    if tmp_path is not None:
        kwargs.update(durability="log", wal_dir=str(tmp_path / "wal"))
    store = DocumentStore(**kwargs)
    if replicate:
        store.enable_replication()
    store.bulk_load([{"doc_id": "d{}".format(index),
                      "xml": "<r><v>{}</v></r>".format(index)}
                     for index in range(count)])
    return store


class TestExportState:
    def test_pages_resume_on_the_cursor(self):
        with loaded_store() as store:
            first = store.export_state(limit=2, form="xml")
            assert [d["doc_id"] for d in first["docs"]] == ["d0", "d1"]
            assert first["cursor"] == "d1" and not first["done"]
            second = store.export_state(cursor=first["cursor"],
                                        limit=2, form="xml")
            assert [d["doc_id"] for d in second["docs"]] == ["d2", "d3"]
            last = store.export_state(cursor=second["cursor"],
                                      form="xml")
            assert [d["doc_id"] for d in last["docs"]] == ["d4"]
            assert last["done"]

    def test_doc_filter_restricts_the_walk(self):
        with loaded_store() as store:
            page = store.export_state(doc_ids=["d3", "d1", "nope"],
                                      form="xml")
            assert [d["doc_id"] for d in page["docs"]] == ["d1", "d3"]
            assert page["done"]

    def test_xml_form_carries_text_and_version(self):
        with loaded_store() as store:
            doc = store.export_state(doc_ids=["d2"],
                                     form="xml")["docs"][0]
            assert doc == {"doc_id": "d2", "text": "<r><v>2</v></r>",
                           "version": 0}

    def test_state_form_round_trips_through_a_mirror(self):
        from repro.cdc import DocumentMirror

        with loaded_store() as store:
            store.submit_xquery(
                "d0", 'insert node <x/> as last into /r')
            store.flush("d0")
            page = store.export_state(form="state")
            mirror = DocumentMirror()
            mirror.bootstrap(page["docs"])
            for doc_id in store.doc_ids():
                assert mirror.text(doc_id) == store.text(doc_id)
            assert mirror.version("d0") == 1

    def test_unknown_form_is_typed(self):
        with loaded_store() as store:
            with pytest.raises(ReproError):
                store.export_state(form="csv")

    def test_stream_pairing_reads_position_before_payloads(
            self, tmp_path):
        with loaded_store(tmp_path, replicate=True) as store:
            page = store.export_state(form="state")
            assert page["stream"] == store.replication.stream_id
            assert page["seq"] == store.replication.next_seq
            # replaying from the paired position redelivers nothing
            feed = ChangeFeed(store.replication)
            from repro.cdc import encode_token
            token = encode_token(page["stream"], page["seq"])
            assert feed.read(from_token=token)["events"] == []

    def test_without_replication_there_is_no_pairing(self):
        with loaded_store() as store:
            page = store.export_state(form="xml")
            assert page["seq"] is None and page["stream"] is None


class TestDispatcherExport:
    def test_token_is_minted_from_the_pairing(self, tmp_path):
        with loaded_store(tmp_path, replicate=True) as store:
            result = StoreDispatcher(store).export(max_docs=2)
            stream, seq = decode_token(result["token"])
            assert stream == store.replication.stream_id
            assert seq == store.replication.next_seq

    def test_token_is_null_without_a_feed(self):
        with loaded_store() as store:
            assert StoreDispatcher(store).export()["token"] is None


class TestExportCorpus:
    def test_drains_pages_and_writes_files(self, tmp_path):
        out_dir = tmp_path / "dump"
        with loaded_store() as store:
            result = export_corpus(StoreDispatcher(store).export,
                                   out_dir=str(out_dir), page_size=2)
            assert result["docs"] == 5 and result["pages"] == 3
            assert result["done"]
        assert sorted(os.listdir(out_dir)) == \
            ["d{}.xml".format(i) for i in range(5)]
        with open(out_dir / "d4.xml", encoding="utf-8") as handle:
            assert handle.read() == "<r><v>4</v></r>"

    def test_token_is_the_first_pages_cdc_anchor(self, tmp_path):
        with loaded_store(tmp_path, replicate=True) as store:
            export = StoreDispatcher(store).export

            def racing_export(**kwargs):
                page = export(**kwargs)
                # a write lands between pages; the run token must stay
                # the FIRST page's (the state the dump began from)
                store.submit_xquery(
                    "d0", 'insert node <x/> as last into /r')
                store.flush("d0")
                return page

            before = store.replication.next_seq
            result = export_corpus(racing_export, page_size=2)
            assert decode_token(result["token"])[1] == before

    def test_filters_pass_through(self, tmp_path):
        with loaded_store() as store:
            result = export_corpus(StoreDispatcher(store).export,
                                   doc_ids=["d1", "d3"])
            assert result["doc_ids"] == ["d1", "d3"]


class TestSafeFilename:
    @pytest.mark.parametrize("doc_id,expected", [
        ("plain", "plain.xml"),
        ("a/b:c", "a_b_c.xml"),
        ("dots.ok-1_2", "dots.ok-1_2.xml"),
        ("", "doc.xml"),
    ])
    def test_everything_becomes_a_file_name(self, doc_id, expected):
        assert safe_filename(doc_id) == expected
