"""The slow-query / slow-flush log: thresholds, plans, JSONL."""

import json

from repro.obs import SlowLog
from repro.store import DocumentStore

DOC = ("<bib><paper><title>T1</title></paper>"
       "<paper><title>T2</title></paper></bib>")


class TestThresholds:
    def test_disabled_log_records_nothing(self):
        log = SlowLog()
        assert log.note_query("d", "/a", 99.0, {"mode": "walker"}) \
            is False
        assert log.note_flush("d", 1, 99.0, {}) is False
        assert log.recent() == []

    def test_fast_requests_stay_below_the_threshold(self):
        log = SlowLog(slow_query_s=1.0, slow_flush_s=1.0)
        assert log.note_query("d", "/a", 0.5, {}) is False
        assert log.note_flush("d", 1, 0.5, {}) is False
        assert log.recent() == []

    def test_ring_is_bounded(self):
        log = SlowLog(slow_query_s=0.0, capacity=3)
        for index in range(6):
            log.note_query("d", "/q{}".format(index), 1.0, {})
        assert [entry["path"] for entry in log.recent()] \
            == ["/q3", "/q4", "/q5"]
        assert [entry["path"] for entry in log.recent(limit=2)] \
            == ["/q4", "/q5"]


class TestStoreIntegration:
    def test_slow_query_entry_embeds_the_recorded_plan(self):
        store = DocumentStore(backend="serial", slow_query_s=0.0)
        try:
            store.open("d1", DOC)
            store.query("d1", "/bib/paper/title")
            [entry] = store.obs.slowlog.recent()
            assert entry["kind"] == "query"
            assert entry["doc_id"] == "d1"
            assert entry["path"] == "/bib/paper/title"
            assert entry["duration_s"] > 0
            # the embedded plan is exactly what explain() reports for
            # the same execution
            explained = store.explain("d1", "/bib/paper/title")["plan"]
            assert entry["plan"] == explained
        finally:
            store.close()

    def test_slow_flush_entry_carries_stage_timings(self, tmp_path):
        store = DocumentStore(backend="serial", slow_flush_s=0.0,
                              wal_dir=str(tmp_path / "wal"))
        try:
            store.open("d1", DOC)
            store.submit_xquery(
                "d1", "insert node <x/> as last into /bib")
            store.flush("d1")
            entries = [entry for entry in store.obs.slowlog.recent()
                       if entry["kind"] == "flush"]
            [entry] = entries
            assert entry["doc_id"] == "d1"
            assert entry["version"] == 1
            assert {"coalesce", "log", "reduce", "apply",
                    "publish"} <= set(entry["stages"])
            assert all(value >= 0
                       for value in entry["stages"].values())
        finally:
            store.close()

    def test_jsonl_file_matches_the_ring(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        store = DocumentStore(backend="serial", slow_query_s=0.0,
                              slow_log_path=str(path))
        try:
            store.open("d1", DOC)
            store.query("d1", "/bib/paper")
            store.query("d1", "//title")
        finally:
            store.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line) for line in lines] \
            == store.obs.slowlog.recent()

    def test_trace_id_rides_the_entry_when_traced(self):
        store = DocumentStore(backend="serial", slow_query_s=0.0)
        try:
            store.open("d1", DOC)
            store.obs.run_traced(
                "feedface", "query",
                lambda: store.query("d1", "/bib/paper"))
            [entry] = store.obs.slowlog.recent()
            assert entry["trace_id"] == "feedface"
        finally:
            store.close()
