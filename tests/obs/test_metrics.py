"""Metric primitives: bucket boundaries, concurrency, exposition."""

import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    percentile_from_buckets,
    series_key,
)
from repro.store import DocumentStore

DOC = "<bib><paper><title>T1</title></paper></bib>"


class TestHistogramBuckets:
    def test_value_at_bound_lands_in_that_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0, 5.0))
        hist.observe(1.0)      # bounds are inclusive upper bounds
        hist.observe(2.0)
        counts, total, count = hist.state()
        assert counts == [1, 1, 0, 0]
        assert count == 2
        assert total == pytest.approx(3.0)

    def test_value_just_above_bound_spills_to_next(self):
        hist = Histogram(bounds=(1.0, 2.0, 5.0))
        hist.observe(1.0000001)
        assert hist.state()[0] == [0, 1, 0, 0]

    def test_overflow_lands_in_the_inf_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0, 5.0))
        hist.observe(100.0)
        assert hist.state()[0] == [0, 0, 0, 1]

    def test_zero_and_negative_land_in_the_first_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(0.0)
        hist.observe(-3.0)
        assert hist.state()[0] == [2, 0, 0]

    def test_state_returns_a_copy(self):
        hist = Histogram(bounds=(1.0,))
        first = hist.state()[0]
        hist.observe(0.5)
        assert first == [0, 0]

    def test_default_bounds_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestPercentiles:
    def test_empty_distribution_has_no_percentile(self):
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 0],
                                       0.5) is None

    def test_interpolates_inside_the_winning_bucket(self):
        # 10 observations spread over (0, 1]: rank 5 of 10 -> 0.5
        value = percentile_from_buckets((1.0, 2.0), [10, 0, 0], 0.5)
        assert value == pytest.approx(0.5)

    def test_inf_bucket_reports_the_last_finite_bound(self):
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 4],
                                       0.99) == 2.0

    def test_quantiles_are_monotone(self):
        counts = [3, 5, 2, 0, 1]
        bounds = (0.1, 0.5, 1.0, 2.0)
        values = [percentile_from_buckets(bounds, counts, quantile)
                  for quantile in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)


class TestCountersAndGauges:
    def test_concurrent_increments_are_lossless(self):
        counter = Counter()

        def spin():
            for __ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_series_key_sorts_labels(self):
        assert series_key("m", {"b": "2", "a": "1"}) \
            == 'm{a="1",b="2"}'
        assert series_key("m", {}) == "m"


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")
        assert registry.histogram("h_seconds", stage="apply") \
            is registry.histogram("h_seconds", stage="apply")
        assert registry.histogram("h_seconds", stage="apply") \
            is not registry.histogram("h_seconds", stage="log")

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m_total")
        with pytest.raises(ValueError):
            registry.gauge("m_total")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c_total": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h_seconds"] == {
            "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}

    def test_render_text_is_cumulative_and_merges_labels(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "things counted").inc(3)
        hist = registry.histogram("h_seconds", buckets=(1.0, 2.0),
                                  stage="apply")
        for value in (0.5, 1.5, 9.0):
            hist.observe(value)
        lines = registry.render_text().splitlines()
        assert "# HELP c_total things counted" in lines
        assert "# TYPE c_total counter" in lines
        assert "c_total 3" in lines
        assert 'h_seconds_bucket{stage="apply",le="1.0"} 1' in lines
        assert 'h_seconds_bucket{stage="apply",le="2.0"} 2' in lines
        assert 'h_seconds_bucket{stage="apply",le="+Inf"} 3' in lines
        assert 'h_seconds_sum{stage="apply"} 11' in lines
        assert 'h_seconds_count{stage="apply"} 3' in lines

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        metric = registry.counter("c_total")
        metric.inc()
        metric.observe(1.0)
        metric.set(5)
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}
        assert registry.render_text() == ""


class TestStoreInstrumentation:
    def test_counters_stay_monotone_under_concurrent_flushes(self):
        store = DocumentStore(workers=2, backend="serial")
        try:
            doc_ids = ["d{}".format(index) for index in range(4)]
            for doc_id in doc_ids:
                store.open(doc_id, DOC)
            observed = []

            def sample():
                # interleaved scrapes must never see a counter go down
                for __ in range(200):
                    snap = store.metrics_snapshot()
                    observed.append(
                        (snap["counters"]["repro_store_submits_total"],
                         snap["counters"]["repro_store_flushes_total"]))

            def work(doc_id):
                for __ in range(5):
                    store.submit_xquery(
                        doc_id, "insert node <x/> as last into /bib")
                    store.flush(doc_id)

            threads = [threading.Thread(target=work, args=(doc_id,))
                       for doc_id in doc_ids]
            threads.append(threading.Thread(target=sample))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert observed == sorted(observed)
            snap = store.metrics_snapshot()
            assert snap["counters"]["repro_store_submits_total"] == 20
            assert snap["counters"]["repro_store_flushes_total"] == 20
            assert snap["counters"]["repro_store_flush_failures_total"] \
                == 0
            assert snap["gauges"]["repro_store_pending_submissions"] == 0
            flush_latency = snap["histograms"][
                'repro_store_op_latency_seconds{op="flush"}']
            assert flush_latency["count"] == 20
        finally:
            store.close()

    def test_metrics_off_store_reports_disabled(self):
        store = DocumentStore(backend="serial", metrics=False)
        try:
            store.open("d1", DOC)
            store.flush("d1")
            snap = store.metrics_snapshot()
            assert snap["metrics_enabled"] is False
            assert snap["counters"] == {}
            assert snap["uptime_seconds"] >= 0
            # the exposition still carries uptime, nothing else
            assert store.metrics_text().startswith(
                "# TYPE repro_uptime_seconds gauge")
        finally:
            store.close()

    def test_planner_route_counters_move(self):
        store = DocumentStore(backend="serial")
        try:
            store.open("d1", DOC)
            store.query("d1", "/bib/paper/title")
            snap = store.metrics_snapshot()
            routes = {mode: snap["counters"][
                'repro_planner_route_total{{mode="{}"}}'.format(mode)]
                for mode in ("indexed", "mixed", "walker")}
            assert sum(routes.values()) == 1
        finally:
            store.close()
