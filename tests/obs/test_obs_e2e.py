"""Observability end to end: server, clients, HTTP, service, CLI."""

import asyncio
import io
import json

import pytest

from repro.api import AsyncStoreClient, StoreClient, StoreServer
from repro.errors import ProtocolError
from repro.store import DocumentStore, StoreService
from repro.cli import main as cli_main
from tests.cluster.harness import ServerThread

DOC = "<bib><paper><title>T1</title></paper></bib>"


def run(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_server(**kwargs):
    return StoreServer(DocumentStore(workers=2, backend="serial"),
                       host="127.0.0.1", port=0, **kwargs)


async def connect(server, **kwargs):
    host, port = server.tcp_address
    return await AsyncStoreClient.connect(host=host, port=port,
                                          **kwargs)


class TestNegotiation:
    def test_hello_advertises_the_observability_features(self):
        async def scenario():
            server = await make_server().start()
            try:
                client = await connect(server)
                try:
                    assert "trace" in client.features
                    assert "metrics" in client.features
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        run(scenario())


class TestMetricsOp:
    def test_snapshot_and_prometheus_over_the_wire(self):
        async def scenario():
            server = await make_server().start()
            try:
                client = await connect(server)
                try:
                    await client.open("d1", DOC)
                    await client.submit_xquery(
                        "d1", "insert node <x/> as last into /bib")
                    await client.flush("d1")
                    snap = await client.metrics()
                    assert snap["metrics_enabled"] is True
                    counters = snap["counters"]
                    assert counters["repro_store_flushes_total"] == 1
                    assert counters[
                        'repro_server_frames_in_total{codec="v2"}'] > 0
                    assert snap["gauges"]["repro_server_connections"] \
                        == 1
                    text = (await client.metrics(
                        format="prometheus"))["text"]
                    assert "repro_store_flushes_total 1" \
                        in text.splitlines()
                    assert "repro_uptime_seconds" in text
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        run(scenario())

    def test_traces_and_slow_sections_are_opt_in(self):
        async def scenario():
            server = await make_server().start()
            try:
                client = await connect(server)
                try:
                    await client.stats(_trace="cafe0001")
                    snap = await client.metrics()
                    assert "traces" not in snap
                    snap = await client.metrics(traces=5, slow=5)
                    assert [t["trace_id"] for t in snap["traces"]] \
                        == ["cafe0001"]
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        run(scenario())

    def test_argument_validation(self):
        async def scenario():
            server = await make_server().start()
            try:
                client = await connect(server)
                try:
                    with pytest.raises(ProtocolError):
                        await client.metrics(format="xml")
                    with pytest.raises(ProtocolError):
                        await client.metrics(traces=-1)
                    with pytest.raises(ProtocolError):
                        await client.metrics(slow=True)
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        run(scenario())


class TestRequestTracing:
    @pytest.mark.parametrize("versions", [(1,), (1, 2)])
    def test_trace_id_is_recorded_server_side(self, versions):
        async def scenario():
            server = await make_server().start()
            try:
                client = await connect(server, versions=versions)
                try:
                    await client.open("d1", DOC)
                    await client.submit_xquery(
                        "d1", "insert node <x/> as last into /bib",
                        _trace="feedbead00000001")
                    await client.flush("d1", _trace="feedbead00000002")
                    traces = server.store.obs.tracer.recent()
                    by_id = {t["trace_id"]: t for t in traces}
                    assert by_id["feedbead00000001"]["op"] \
                        == "submit_xquery"
                    flush_trace = by_id["feedbead00000002"]
                    assert flush_trace["op"] == "flush"
                    stage_names = [child["name"] for child
                                   in flush_trace["spans"]["children"]]
                    assert "coalesce" in stage_names
                    assert "publish" in stage_names
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        run(scenario())

    def test_untraced_calls_record_nothing(self):
        async def scenario():
            server = await make_server().start()
            try:
                client = await connect(server)
                try:
                    await client.open("d1", DOC)
                    await client.stats()
                    assert server.store.obs.tracer.recent() == []
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        run(scenario())

    def test_blocking_client_refuses_a_malformed_trace(self):
        with ServerThread(DocumentStore(backend="serial")) as node:
            host, port = node.address.rsplit(":", 1)
            with StoreClient.connect(host=host,
                                     port=int(port)) as client:
                with pytest.raises(ProtocolError):
                    client.docs(_trace="")
                client.docs(_trace="ab12")   # well-formed: accepted


class TestMetricsHttp:
    def test_scrape_and_404(self):
        async def scenario():
            server = await make_server(
                metrics_listen=("127.0.0.1", 0)).start()
            try:
                client = await connect(server)
                try:
                    await client.open("d1", DOC)
                finally:
                    await client.aclose()
                host, port = server.metrics_http_address

                async def get(path):
                    reader, writer = await asyncio.open_connection(
                        host, port)
                    writer.write("GET {} HTTP/1.1\r\nHost: x\r\n\r\n"
                                 .format(path).encode("ascii"))
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    return raw.decode("utf-8")

                body = await get("/metrics")
                assert body.startswith("HTTP/1.1 200 OK\r\n")
                assert "text/plain; version=0.0.4" in body
                assert "repro_store_op_latency_seconds_bucket" in body
                missing = await get("/nope")
                assert missing.startswith("HTTP/1.1 404")
            finally:
                await server.aclose()

        run(scenario())


class TestStatsExtensions:
    def test_uptime_and_pending_batches_over_the_wire(self):
        async def scenario():
            server = await make_server().start()
            try:
                client = await connect(server)
                try:
                    await client.open("d1", DOC)
                    await client.submit_xquery(
                        "d1", "insert node <x/> as last into /bib")
                    await client.flush("d1")
                    stats = await client.stats()
                    assert stats["uptime_seconds"] >= 0
                    [entry] = stats["stats"]
                    assert entry["version"] == 1
                    assert entry["pending_batches"] == 0
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        run(scenario())


class TestLineProtocol:
    def test_metrics_command_summary_and_json(self):
        service = StoreService(DocumentStore(backend="serial"))
        try:
            service.handle_line("open d1 /dev/null")  # error path ok
            summary = service.handle_line("metrics")
            assert summary.startswith("ok metrics enabled=true ")
            response = service.handle_line("metrics --json")
            prefix = "ok metrics-json "
            assert response.startswith(prefix)
            payload = json.loads(response[len(prefix):])
            assert payload["metrics_enabled"] is True
            assert "counters" in payload
        finally:
            service.store.close()


class TestCli:
    def test_store_metrics_against_a_live_server(self):
        with ServerThread(DocumentStore(backend="serial")) as node:
            out = io.StringIO()
            assert cli_main(["store", "metrics", "--target",
                             node.address], out=out) == 0
            assert "repro_server_connections" in out.getvalue()
            out = io.StringIO()
            assert cli_main(["store", "metrics", "--target",
                             node.address, "--json"], out=out) == 0
            payload = json.loads(out.getvalue())
            assert payload["metrics_enabled"] is True

    def test_store_top_renders_live_frames(self):
        store = DocumentStore(backend="serial")
        with ServerThread(store) as node:
            host, port = node.address.rsplit(":", 1)
            with StoreClient.connect(host=host,
                                     port=int(port)) as client:
                client.open("d1", DOC)
                client.submit_xquery(
                    "d1", "insert node <x/> as last into /bib")
                client.flush("d1")
                client.query("d1", "/bib/paper/title")
            out = io.StringIO()
            assert cli_main(
                ["store", "top", "--target", node.address,
                 "--interval", "0.05", "--iterations", "2",
                 "--no-clear"], out=out) == 0
            frame = out.getvalue()
            assert "repro store top" in frame
            assert "ops/s" in frame
            # the first frame averages over uptime: the ops above must
            # show up as nonzero rates with real percentiles
            flush_line = next(line for line in frame.splitlines()
                              if line.startswith("flush"))
            fields = flush_line.split()
            assert float(fields[1]) > 0          # ops/s
            assert float(fields[2]) > 0          # p50 ms
            assert float(fields[3]) > 0          # p99 ms
            assert "replication: off" in frame
