"""Request tracing: ids, span trees, the wire envelope, the ring."""

import pytest

from repro.api import protocol
from repro.errors import ProtocolError
from repro.obs import Tracer, new_trace_id
from repro.store import DocumentStore

DOC = "<bib><paper><title>T1</title></paper></bib>"


class TestTraceIds:
    def test_ids_are_distinct_hex(self):
        ids = {new_trace_id() for __ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            int(trace_id, 16)


class TestTracer:
    def test_run_traced_records_a_span_tree(self):
        tracer = Tracer()

        def body():
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
            return 42

        assert tracer.run_traced("t1", "op", body) == 42
        [trace] = tracer.recent()
        assert trace["trace_id"] == "t1"
        assert trace["op"] == "op"
        root = trace["spans"]
        assert root["name"] == "op"
        [outer] = root["children"]
        assert outer["name"] == "outer"
        assert [child["name"] for child in outer["children"]] \
            == ["inner"]
        assert root["duration_s"] >= outer["duration_s"] >= 0

    def test_without_a_trace_id_nothing_is_recorded(self):
        tracer = Tracer()
        assert tracer.run_traced(None, "op", lambda: "r") == "r"
        with tracer.span("orphan"):
            pass
        assert tracer.recent() == []
        assert Tracer.current_trace_id() is None

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.run_traced("t{}".format(index), "op", lambda: None)
        assert [t["trace_id"] for t in tracer.recent()] == ["t3", "t4"]
        assert [t["trace_id"] for t in tracer.recent(limit=1)] == ["t4"]

    def test_exceptions_still_close_the_trace(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            tracer.run_traced("t1", "op", self._boom)
        [trace] = tracer.recent()
        assert trace["trace_id"] == "t1"
        assert Tracer.current_trace_id() is None

    @staticmethod
    def _boom():
        raise RuntimeError("boom")


class TestWireEnvelope:
    """The trace id must survive both codecs, v1 JSON and v2 binary."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_trace_round_trips(self, version):
        message = protocol.request(7, "stats", {"doc_id": "d1"},
                                   trace="abc123")
        decoder = protocol.FrameDecoder()
        decoder.use_version(version)
        [decoded] = decoder.feed(protocol.encode_frame(message,
                                                       version))
        assert decoded["id"] == 7
        assert decoded["op"] == "stats"
        assert decoded["args"] == {"doc_id": "d1"}
        assert decoded["trace"] == "abc123"
        # parse_request tolerates the extra envelope key
        assert protocol.parse_request(decoded) \
            == (7, "stats", {"doc_id": "d1"})

    @pytest.mark.parametrize("version", [1, 2])
    def test_untraced_requests_are_byte_identical_to_before(self,
                                                            version):
        with_none = protocol.encode_frame(
            protocol.request(1, "docs", trace=None), version)
        plain = protocol.encode_frame(protocol.request(1, "docs"),
                                      version)
        assert with_none == plain
        if version == 2:
            assert plain[4] == 0x01      # request kind, not traced

    def test_v2_traced_frame_uses_kind_0x04(self):
        frame = protocol.encode_frame(
            protocol.request(1, "docs", trace="f" * 16), 2)
        assert frame[4] == 0x04

    def test_v2_rejects_a_non_string_trace_id(self):
        frame = protocol.encode_frame(
            protocol.request(1, "docs", trace=123), 2)
        decoder = protocol.FrameDecoder()
        decoder.use_version(2)
        with pytest.raises(ProtocolError):
            decoder.feed(frame)


class TestTracedFlush:
    def test_flush_reconstructs_the_stage_span_tree(self, tmp_path):
        store = DocumentStore(backend="serial",
                              wal_dir=str(tmp_path / "wal"))
        try:
            store.open("d1", DOC)
            store.submit_xquery(
                "d1", "insert node <x/> as last into /bib")
            trace_id = new_trace_id()
            result = store.obs.run_traced(
                trace_id, "flush", lambda: store.flush("d1"))
            assert result.version == 1
            [trace] = [t for t in store.obs.tracer.recent()
                       if t["trace_id"] == trace_id]
            stages = {child["name"]: child
                      for child in trace["spans"]["children"]}
            assert {"coalesce", "log", "reduce", "apply",
                    "publish"} <= set(stages)
            # the durability spans nest under the WAL stage: one flush
            # reconstructs as coalesce -> log(wal-append, fsync-wait)
            # -> reduce -> apply -> publish
            wal_children = [child["name"]
                            for child in stages["log"]["children"]]
            assert "wal-append" in wal_children
            assert "fsync-wait" in wal_children
            for span in stages.values():
                assert span["duration_s"] >= 0
                assert span["start_offset_s"] >= 0
        finally:
            store.close()

    def test_stage_timings_feed_the_histogram_even_untraced(self):
        store = DocumentStore(backend="serial")
        try:
            store.open("d1", DOC)
            store.submit_xquery(
                "d1", "insert node <x/> as last into /bib")
            store.flush("d1")
            snap = store.metrics_snapshot()
            key = 'repro_store_flush_stage_seconds{stage="publish"}'
            assert snap["histograms"][key]["count"] == 1
            assert store.obs.tracer.recent() == []
        finally:
            store.close()
