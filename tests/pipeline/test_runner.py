"""run_pipeline / CLI `pipeline` subcommand."""

import io

import pytest

from repro.apply.inmemory import apply_in_memory
from repro.cli import main
from repro.pipeline import run_pipeline
from repro.pul.serialize import pul_to_xml
from repro.reduction import reduce_deterministic
from repro.workloads import generate_pul
from repro.xdm.serializer import serialize


@pytest.fixture
def pul(figure1, figure1_labeling):
    return generate_pul(figure1, 30, seed=7, labeling=figure1_labeling)


class TestRunPipeline:
    def test_matches_sequential_reference(self, figure1, pul):
        text = serialize(figure1)
        expected = apply_in_memory(text, reduce_deterministic(pul))
        result = run_pipeline(text, pul, workers=4, backend="serial")
        assert result.text == expected

    def test_attaches_missing_labels(self, figure1, pul):
        bare = pul.replace_operations(pul.operations())
        bare.labels.clear()
        result = run_pipeline(serialize(figure1), bare, workers=4,
                              backend="serial")
        assert result.text == run_pipeline(
            serialize(figure1), pul, workers=4, backend="serial").text

    def test_input_pul_is_not_mutated(self, figure1, pul):
        bare = pul.replace_operations(pul.operations())
        bare.labels.clear()
        run_pipeline(serialize(figure1), bare, workers=2, backend="serial")
        assert bare.labels == {}

    def test_stats_shape(self, figure1, pul):
        result = run_pipeline(serialize(figure1), pul, workers=4,
                              backend="serial")
        stats = result.stats()
        assert stats["backend"] == "serial"
        assert stats["workers"] == 4
        assert stats["shards"] == len(stats["shard_sizes"])
        assert stats["input_ops"] == len(pul)
        assert stats["reduced_ops"] <= stats["input_ops"]
        assert stats["failures"] == 0

    def test_accepts_document_instance(self, figure1, pul):
        from_doc = run_pipeline(figure1, pul, workers=2, backend="serial")
        from_text = run_pipeline(serialize(figure1), pul, workers=2,
                                 backend="serial")
        assert from_doc.text == from_text.text


class TestCliPipeline:
    @pytest.fixture
    def paths(self, tmp_path, figure1, pul):
        doc_path = tmp_path / "doc.xml"
        doc_path.write_text(serialize(figure1))
        pul_path = tmp_path / "p.pul"
        pul_path.write_text(pul_to_xml(pul))
        return str(doc_path), str(pul_path)

    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_parallel_matches_sequential_flag(self, paths):
        doc_path, pul_path = paths
        code, parallel = self._run(
            ["pipeline", doc_path, pul_path, "--workers", "4",
             "--backend", "thread"])
        assert code == 0
        code, sequential = self._run(
            ["pipeline", doc_path, pul_path, "--sequential"])
        assert code == 0
        assert parallel == sequential

    def test_shards_override(self, paths, capsys):
        doc_path, pul_path = paths
        code, __ = self._run(
            ["pipeline", doc_path, pul_path, "--backend", "serial",
             "--shards", "8"])
        assert code == 0

    def test_missing_file_fails_cleanly(self, paths):
        doc_path, __ = paths
        code, __ = self._run(["pipeline", doc_path, "/nonexistent.pul"])
        assert code == 2
