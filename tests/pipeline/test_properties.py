"""Differential properties of the sharded pipeline.

The pipeline is correct iff it is indistinguishable from the sequential
engine: for any document and applicable PUL, sharding + parallel reduction
+ merge must yield the sequential reduction (as a PUL, up to multiset
equality), and the applied result must be byte-identical to the
sequential ``reduction.engine`` + ``apply.inmemory`` path — for every
shard count.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apply.inmemory import apply_in_memory
from repro.errors import NotApplicableError
from repro.labeling import ContainmentLabeling
from repro.pipeline import ParallelReducer, merge_shards, run_pipeline, \
    shard_pul
from repro.reduction import reduce_deterministic
from repro.xdm.serializer import serialize

from tests.strategies import applicable_puls, documents

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_WORKER_COUNTS = (1, 2, 8)


@st.composite
def document_and_pul(draw):
    document = draw(documents())
    pul = draw(applicable_puls(document, max_ops=8))
    return document, pul


@settings(**_SETTINGS)
@given(document_and_pul())
def test_pipeline_document_equals_sequential_path(case):
    """Flagship contract: sharded pipeline ≡ sequential reduce + apply —
    including the XQUF dynamic error cases (e.g. renames that collide on
    an attribute name), where both paths must reject the PUL."""
    document, pul = case
    text = serialize(document)
    labeling = ContainmentLabeling().build(document)
    pul.attach_labels(labeling)
    try:
        expected = apply_in_memory(text, reduce_deterministic(pul))
    except NotApplicableError:
        for workers in _WORKER_COUNTS:
            with pytest.raises(NotApplicableError):
                run_pipeline(text, pul, workers=workers, backend="serial")
        return
    for workers in _WORKER_COUNTS:
        result = run_pipeline(text, pul, workers=workers, backend="serial")
        assert result.text == expected


@settings(**_SETTINGS)
@given(document_and_pul())
def test_reduction_invariant_under_shard_count(case):
    """shard + reduce + merge yields the same PUL for 1, 2 and 8 shards,
    and that PUL is the sequential reduction (multiset equality)."""
    document, pul = case
    labeling = ContainmentLabeling().build(document)
    pul.attach_labels(labeling)
    sequential = reduce_deterministic(pul)
    for workers in _WORKER_COUNTS:
        reducer = ParallelReducer(workers=workers, backend="serial")
        outcome = reducer.reduce(pul)
        assert merge_shards(outcome.reduced) == sequential


@settings(**_SETTINGS)
@given(document_and_pul())
def test_shards_partition_operations(case):
    """Sharding loses nothing, duplicates nothing, splits no target."""
    document, pul = case
    labeling = ContainmentLabeling().build(document)
    pul.attach_labels(labeling)
    for count in (2, 8):
        shards = shard_pul(pul, count)
        rejoined = sorted(op.describe() for s in shards for op in s)
        assert rejoined == sorted(op.describe() for op in pul)
        seen = {}
        for index, shard in enumerate(shards):
            for op in shard:
                assert seen.setdefault(op.target, index) == index


@settings(**_SETTINGS)
@given(document_and_pul())
def test_merge_is_union_of_reduced_shards(case):
    document, pul = case
    labeling = ContainmentLabeling().build(document)
    pul.attach_labels(labeling)
    shards = shard_pul(pul, 4)
    reduced = [reduce_deterministic(shard) for shard in shards]
    merged = merge_shards(reduced)
    assert sorted(op.describe() for op in merged) == \
        sorted(op.describe() for shard in reduced for op in shard)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(document_and_pul(), st.integers(1, 64))
def test_batch_size_never_changes_the_output(case, batch_size):
    document, pul = case
    text = serialize(document)
    labeling = ContainmentLabeling().build(document)
    pul.attach_labels(labeling)
    try:
        expected = apply_in_memory(text, reduce_deterministic(pul))
    except NotApplicableError:
        return
    result = run_pipeline(text, pul, workers=2, backend="serial",
                          batch_size=batch_size)
    assert result.text == expected
