"""Unit tests for containment-interval sharding."""

import pytest

from repro.errors import ReproError
from repro.pipeline.shard import partition_targets, shard_pul
from repro.pul.ops import Delete, InsertAfter, InsertBefore, Rename
from repro.pul.pul import PUL
from repro.reasoning import DocumentOracle
from repro.workloads import generate_pul
from repro.xdm import parse_document
from repro.xdm.node import Node


def _component_sets(components):
    return {frozenset(component) for component in components}


def _find(document, path):
    """Node id at a /-separated child-index path like '0/2/1'."""
    node = document.root
    for step in filter(None, path.split("/")):
        node = node.children[int(step)]
    return node.node_id


@pytest.fixture
def wide_doc():
    """Root with four independent element subtrees."""
    return parse_document(
        "<r><a><a1/><a2/></a><b><b1/></b><c><c1/><c2/></c><d/></r>")


class TestPartitionTargets:
    def test_disjoint_subtrees_stay_apart(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1 = _find(wide_doc, "0/0")
        c1 = _find(wide_doc, "2/0")
        components = partition_targets([a1, c1], oracle)
        assert _component_sets(components) == {
            frozenset([a1]), frozenset([c1])}

    def test_ancestor_descendant_grouped(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a = _find(wide_doc, "0")
        a2 = _find(wide_doc, "0/1")
        components = partition_targets([a, a2], oracle)
        assert _component_sets(components) == {frozenset([a, a2])}

    def test_ancestor_chain_transitively_grouped(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        root = wide_doc.root.node_id
        a = _find(wide_doc, "0")
        a1 = _find(wide_doc, "0/0")
        b = _find(wide_doc, "1")
        components = partition_targets([root, a, a1, b], oracle)
        # the root contains everything: a single component
        assert _component_sets(components) == {
            frozenset([root, a, a1, b])}

    def test_adjacent_siblings_grouped(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1 = _find(wide_doc, "0/0")
        a2 = _find(wide_doc, "0/1")
        components = partition_targets([a1, a2], oracle)
        assert _component_sets(components) == {frozenset([a1, a2])}

    def test_nonadjacent_siblings_stay_apart(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a = _find(wide_doc, "0")   # <a> and <c> are two apart
        c = _find(wide_doc, "2")
        components = partition_targets([a, c], oracle)
        assert _component_sets(components) == {
            frozenset([a]), frozenset([c])}

    def test_attribute_grouped_with_element(self, small_doc):
        oracle = DocumentOracle(small_doc)
        d = next(n for n in small_doc.nodes()
                 if n.is_element and n.name == "d")
        attr = d.attributes[0]
        components = partition_targets([d.node_id, attr.node_id], oracle)
        assert _component_sets(components) == {
            frozenset([d.node_id, attr.node_id])}

    def test_unknown_targets_share_one_component(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1 = _find(wide_doc, "0/0")
        components = partition_targets([a1, 777777, 888888], oracle)
        assert _component_sets(components) == {
            frozenset([a1]), frozenset([777777, 888888])}


class TestRefinedPartition:
    """With per-target operation names, only rule-capable pairs connect."""

    def test_renames_on_adjacent_siblings_stay_apart(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1, a2 = _find(wide_doc, "0/0"), _find(wide_doc, "0/1")
        components = partition_targets(
            {a1: {"rename"}, a2: {"rename"}}, oracle)
        assert _component_sets(components) == {
            frozenset([a1]), frozenset([a2])}

    def test_sibling_insert_join_connects(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1, a2 = _find(wide_doc, "0/0"), _find(wide_doc, "0/1")
        components = partition_targets(
            {a1: {"insertAfter"}, a2: {"insertBefore"}}, oracle)
        assert _component_sets(components) == {frozenset([a1, a2])}

    def test_repn_left_of_insert_before_connects(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1, a2 = _find(wide_doc, "0/0"), _find(wide_doc, "0/1")
        components = partition_targets(
            {a1: {"replaceNode"}, a2: {"insertBefore"}}, oracle)
        assert _component_sets(components) == {frozenset([a1, a2])}

    def test_nonkiller_ancestor_stays_apart(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a, a1 = _find(wide_doc, "0"), _find(wide_doc, "0/0")
        components = partition_targets(
            {a: {"rename"}, a1: {"rename"}}, oracle)
        assert _component_sets(components) == {
            frozenset([a]), frozenset([a1])}

    def test_killer_ancestor_captures_descendants(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a, a1 = _find(wide_doc, "0"), _find(wide_doc, "0/0")
        components = partition_targets(
            {a: {"delete"}, a1: {"rename"}}, oracle)
        assert _component_sets(components) == {frozenset([a, a1])}

    def test_child_insert_parent_connects_to_receiver_child(
            self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a, a1 = _find(wide_doc, "0"), _find(wide_doc, "0/0")
        components = partition_targets(
            {a: {"insertInto"}, a1: {"insertBefore"}}, oracle)
        assert _component_sets(components) == {frozenset([a, a1])}

    def test_child_insert_parent_with_rename_child_stays_apart(
            self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a, a1 = _find(wide_doc, "0"), _find(wide_doc, "0/0")
        components = partition_targets(
            {a: {"insertInto"}, a1: {"rename"}}, oracle)
        assert _component_sets(components) == {
            frozenset([a]), frozenset([a1])}


class TestShardPul:
    def test_rejects_bad_shard_count(self, wide_doc):
        with pytest.raises(ReproError):
            shard_pul(PUL(), 0, structure=DocumentOracle(wide_doc))

    def test_empty_pul_one_empty_shard(self, wide_doc):
        shards = shard_pul(PUL(origin="p"), 4,
                           structure=DocumentOracle(wide_doc))
        assert len(shards) == 1
        assert len(shards[0]) == 0
        assert shards[0].origin == "p"

    def test_single_shard_is_whole_pul(self, wide_doc, figure1_labeling,
                                       figure1):
        pul = generate_pul(figure1, 12, seed=3, labeling=figure1_labeling)
        shards = shard_pul(pul, 1)
        assert len(shards) == 1
        assert shards[0].operations() == pul.operations()

    def test_shards_partition_the_operations(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1 = _find(wide_doc, "0/0")
        b1 = _find(wide_doc, "1/0")
        c1 = _find(wide_doc, "2/0")
        d = _find(wide_doc, "3")
        ops = [Rename(a1, "x"), Delete(b1), Rename(c1, "y"),
               Rename(d, "z"), Delete(c1)]
        pul = PUL(ops)
        shards = shard_pul(pul, 4, structure=oracle)
        rejoined = [op for shard in shards for op in shard]
        assert sorted(op.describe() for op in rejoined) == \
            sorted(op.describe() for op in ops)
        # same-target ops never split across shards
        for shard in shards:
            assert {op.target for op in shard}.isdisjoint(
                {op.target for other in shards if other is not shard
                 for op in other})

    def test_relative_order_preserved_within_shard(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        a1 = _find(wide_doc, "0/0")
        a2 = _find(wide_doc, "0/1")
        # ins→(a1) / ins←(a2) joins the two targets (rule I18)
        pul = PUL([Rename(a2, "n1"), InsertAfter(a1, [Node.element("t")]),
                   Delete(a2), InsertBefore(a2, [Node.element("u")])])
        [shard] = [s for s in shard_pul(pul, 4, structure=oracle) if len(s)]
        assert [op.describe() for op in shard] == \
            [op.describe() for op in pul]

    def test_labels_restricted_to_shard_targets(self, figure1,
                                                figure1_labeling):
        pul = generate_pul(figure1, 20, seed=5, labeling=figure1_labeling)
        for shard in shard_pul(pul, 8):
            assert set(shard.labels) <= set(pul.labels)
            for op in shard:
                if op.target in pul.labels:
                    assert op.target in shard.labels

    def test_balanced_when_components_allow(self, wide_doc):
        oracle = DocumentOracle(wide_doc)
        targets = [_find(wide_doc, "0/0"), _find(wide_doc, "1/0"),
                   _find(wide_doc, "2/0"), _find(wide_doc, "3")]
        pul = PUL([Rename(t, "n") for t in targets])
        shards = shard_pul(pul, 4, structure=oracle)
        assert sorted(len(s) for s in shards) == [1, 1, 1, 1]

    def test_sibling_insert_pair_lands_together(self, wide_doc):
        """ins→(v) and ins←(right-sibling(v)) can interact (rule I18):
        they must share a shard."""
        oracle = DocumentOracle(wide_doc)
        a1 = _find(wide_doc, "0/0")
        a2 = _find(wide_doc, "0/1")
        pul = PUL([InsertAfter(a1, [Node.element("t1")]),
                   InsertBefore(a2, [Node.element("t2")])])
        shards = [s for s in shard_pul(pul, 4, structure=oracle) if len(s)]
        assert len(shards) == 1
        assert len(shards[0]) == 2
