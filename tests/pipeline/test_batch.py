"""Batched streaming apply: chunking is invisible in the output."""

import pytest

from repro.apply.events import document_events, events_to_xml, parse_events
from repro.apply.streaming import apply_streaming
from repro.errors import ReproError
from repro.pipeline import apply_batched, apply_batched_text, \
    serialize_batches
from repro.workloads import generate_pul
from repro.xdm.serializer import serialize


def test_rejects_bad_batch_size(figure1):
    with pytest.raises(ReproError):
        list(serialize_batches(document_events(figure1), batch_size=0))


@pytest.mark.parametrize("batch_size", (1, 2, 7, 4096))
def test_chunk_concatenation_is_plain_serialization(figure1, batch_size):
    chunks = list(serialize_batches(document_events(figure1),
                                    batch_size=batch_size))
    assert "".join(chunks) == events_to_xml(document_events(figure1))
    if batch_size == 1:
        assert len(chunks) > 1


def test_small_batches_yield_many_chunks(figure1):
    assert len(list(serialize_batches(document_events(figure1),
                                      batch_size=2))) > 2


@pytest.mark.parametrize("batch_size", (1, 3, 1024))
def test_apply_batched_matches_streaming_apply(figure1, figure1_labeling,
                                               batch_size):
    text = serialize(figure1)
    pul = generate_pul(figure1, 15, seed=2, labeling=figure1_labeling)
    fresh = figure1.allocator.next_value
    expected = events_to_xml(apply_streaming(
        parse_events(text), pul, fresh_start=fresh))
    chunked = apply_batched_text(parse_events(text), pul,
                                 batch_size=batch_size, fresh_start=fresh)
    assert chunked == expected


def test_apply_batched_is_lazy(figure1, figure1_labeling):
    pul = generate_pul(figure1, 6, seed=4, labeling=figure1_labeling)
    chunks = apply_batched(document_events(figure1), pul, batch_size=4)
    first = next(chunks)
    assert isinstance(first, str) and first
