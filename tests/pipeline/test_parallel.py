"""ParallelReducer backends, telemetry and failure recovery."""

import pytest

import repro.pipeline.parallel as parallel_mod
from repro.errors import ReproError
from repro.labeling import ContainmentLabeling
from repro.pipeline import ParallelReducer, merge_shards
from repro.pul.ops import Delete, InsertIntoAsLast, Rename
from repro.pul.pul import PUL
from repro.reduction import reduce_deterministic
from repro.xdm import parse_document
from repro.xdm.node import Node


@pytest.fixture
def pul():
    """A PUL spanning eight independent subtrees (shards > 1 guaranteed)."""
    document = parse_document("<r>" + "".join(
        "<s{0}><c{0}>t</c{0}></s{0}>".format(i) for i in range(8)) + "</r>")
    labeling = ContainmentLabeling().build(document)
    ops = []
    for index, subtree in enumerate(document.root.children):
        # target the inner children: unlike the subtree roots they are
        # not siblings of one another, so each subtree is one component
        child = subtree.children[0]
        ops.append(Rename(child.node_id, "x{}".format(index)))
        if index % 2:
            ops.append(Delete(child.children[0].node_id))
        else:
            ops.append(InsertIntoAsLast(child.node_id,
                                        [Node.element("n")]))
    pul = PUL(ops)
    pul.attach_labels(labeling)
    return pul


def test_rejects_unknown_backend():
    with pytest.raises(ReproError):
        ParallelReducer(backend="gpu")


def test_rejects_bad_worker_count():
    with pytest.raises(ReproError):
        ParallelReducer(workers=0)


@pytest.mark.parametrize("backend", ("serial", "thread"))
def test_backends_match_sequential_reduction(backend, pul):
    outcome = ParallelReducer(workers=4, backend=backend).reduce(pul)
    assert merge_shards(outcome.reduced) == reduce_deterministic(pul)
    assert outcome.input_ops == len(pul)
    assert outcome.output_ops == sum(len(s) for s in outcome.reduced)
    assert outcome.failures == []


@pytest.mark.slow
def test_process_backend_matches_sequential_reduction(pul):
    outcome = ParallelReducer(workers=2, backend="process").reduce(pul)
    assert merge_shards(outcome.reduced) == reduce_deterministic(pul)


def test_wire_mode_matches_sequential_reduction(pul):
    from repro.pipeline.shard import shard_pul
    from repro.pul.serialize import pul_from_xml, pul_to_xml

    payloads = [pul_to_xml(s) for s in shard_pul(pul, 4)]
    with ParallelReducer(workers=4, backend="thread") as reducer:
        reduced, failures = reducer.reduce_wire(payloads)
    assert failures == []
    merged = merge_shards([pul_from_xml(p) for p in reduced])
    assert merged == reduce_deterministic(pul)


def test_close_is_idempotent_and_pool_rewarms(pul):
    reducer = ParallelReducer(workers=2, backend="thread")
    first = reducer.reduce(pul)
    reducer.close()
    reducer.close()
    second = reducer.reduce(pul)
    reducer.close()
    assert merge_shards(first.reduced) == merge_shards(second.reduced)


def test_single_shard_short_circuits_to_serial(pul):
    reducer = ParallelReducer(workers=4, backend="thread")
    outcome = reducer.reduce(pul, num_shards=1)
    assert outcome.backend == "serial"
    assert len(outcome.shards) == 1


class _FlakyReduce:
    """Fails the first pool-side attempt on every other shard."""

    def __init__(self, real):
        self.real = real
        self.calls = 0
        self.failed = set()

    def __call__(self, shard, deterministic):
        self.calls += 1
        key = id(shard)
        if self.calls % 2 == 1 and key not in self.failed:
            self.failed.add(key)
            raise RuntimeError("worker crashed mid-batch")
        return self.real(shard, deterministic)


def test_worker_failure_mid_batch_is_recovered(monkeypatch, pul):
    real = parallel_mod._reduce_shard
    flaky = _FlakyReduce(real)
    monkeypatch.setattr(parallel_mod, "_reduce_shard", flaky)
    reducer = ParallelReducer(workers=4, backend="thread")
    outcome = reducer.reduce(pul)
    assert outcome.failures, "expected at least one recovered failure"
    assert all(f.shard_index is not None for f in outcome.failures)
    monkeypatch.setattr(parallel_mod, "_reduce_shard", real)
    assert merge_shards(outcome.reduced) == reduce_deterministic(pul)


def test_worker_failure_without_retry_raises(monkeypatch, pul):
    def always_broken(shard, deterministic):
        raise RuntimeError("worker crashed mid-batch")

    monkeypatch.setattr(parallel_mod, "_reduce_shard", always_broken)
    reducer = ParallelReducer(workers=4, backend="thread",
                              retry_serial=False)
    with pytest.raises(ReproError, match="pipeline workers failed"):
        reducer.reduce(pul)


def test_domain_errors_propagate_not_retried(monkeypatch, pul):
    calls = []

    def domain_error(shard, deterministic):
        calls.append(1)
        raise ReproError("shard is semantically broken")

    monkeypatch.setattr(parallel_mod, "_reduce_shard", domain_error)
    reducer = ParallelReducer(workers=4, backend="thread")
    with pytest.raises(ReproError, match="semantically broken"):
        reducer.reduce(pul)
