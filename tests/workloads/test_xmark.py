"""Tests for the XMark-shaped document generator."""

from repro.workloads import generate_xmark, xmark_text
from repro.xdm import parse_document
from repro.xdm.compare import documents_equal


class TestXMark:
    def test_deterministic_per_seed(self):
        a = generate_xmark(scale=0.02, seed=5)
        b = generate_xmark(scale=0.02, seed=5)
        assert documents_equal(a, b, with_ids=True)

    def test_different_seeds_differ(self):
        a = generate_xmark(scale=0.02, seed=5)
        b = generate_xmark(scale=0.02, seed=6)
        assert not documents_equal(a, b)

    def test_shape(self):
        document = generate_xmark(scale=0.02, seed=1)
        sections = [child.name for child in document.root.children]
        assert sections == ["regions", "categories", "people",
                            "open_auctions"]
        items = list(document.elements_by_name("item"))
        assert items
        assert all(any(a.name == "id" for a in item.attributes)
                   for item in items)

    def test_size_scales_roughly_linearly(self):
        small = len(xmark_text(scale=0.02, seed=1))
        large = len(xmark_text(scale=0.08, seed=1))
        assert 2.5 < large / small < 6

    def test_output_reparses(self):
        text = xmark_text(scale=0.02, seed=1)
        document = parse_document(text)
        assert document.root.name == "site"

    def test_people_have_profiles(self):
        document = generate_xmark(scale=0.02, seed=1)
        person = next(document.elements_by_name("person"))
        child_names = {c.name for c in person.children}
        assert {"name", "emailaddress", "address", "profile"} <= child_names
