"""Tests for the synthetic PUL generators."""

import pytest

from repro.aggregation import aggregate
from repro.pul.semantics import apply_pul
from repro.reasoning import DocumentOracle
from repro.reduction import reduce_deterministic
from repro.workloads import (
    generate_pul,
    generate_reducible_pul,
    generate_sequential_puls,
    generate_xmark,
)
from repro.xdm import parse_document
from repro.xdm.compare import canonical_string


@pytest.fixture(scope="module")
def xmark():
    return generate_xmark(scale=0.03, seed=2)


class TestGeneratePul:
    def test_requested_size(self, xmark):
        pul = generate_pul(xmark, 120, seed=1)
        assert len(pul) == 120

    def test_applicable(self, xmark):
        pul = generate_pul(xmark, 120, seed=1)
        assert pul.is_applicable(xmark)
        working = xmark.copy()
        apply_pul(working, pul)

    def test_deterministic(self, xmark):
        assert generate_pul(xmark, 50, seed=3) == \
            generate_pul(xmark, 50, seed=3)

    def test_even_mix(self, xmark):
        pul = generate_pul(xmark, 110, seed=4)
        kinds = {}
        for op in pul:
            kinds[op.op_name] = kinds.get(op.op_name, 0) + 1
        assert len(kinds) == 11
        assert max(kinds.values()) - min(kinds.values()) <= 3

    def test_labels_attached(self, xmark):
        from repro.labeling import ContainmentLabeling
        labeling = ContainmentLabeling().build(xmark)
        pul = generate_pul(xmark, 30, seed=5, labeling=labeling)
        assert set(pul.labels) >= pul.targets()


class TestReduciblePul:
    def test_reduction_hits_near_ratio(self, xmark):
        pul = generate_reducible_pul(xmark, 300, hit_ratio=0.1, seed=6)
        reduced = reduce_deterministic(pul, DocumentOracle(xmark))
        collapsed = len(pul) - len(reduced)
        # at least the planted pairs collapse; random extras may add more
        assert collapsed >= 0.1 * 300 * 0.8

    def test_still_applicable(self, xmark):
        pul = generate_reducible_pul(xmark, 200, hit_ratio=0.1, seed=7)
        assert pul.is_applicable(xmark)
        working = xmark.copy()
        apply_pul(working, pul)


class TestSequentialPuls:
    def test_chain_applies_and_aggregates(self, xmark):
        puls, final = generate_sequential_puls(xmark, 4, 60, seed=8)
        assert len(puls) == 4
        assert all(len(p) == 60 for p in puls)
        combined = aggregate(puls)
        working = xmark.copy()
        apply_pul(working, combined, preserve_ids=True)
        assert canonical_string(working.root, with_ids=True) == \
            canonical_string(final.root, with_ids=True)

    def test_new_node_ratio_targets_new_nodes(self, xmark):
        puls, __ = generate_sequential_puls(xmark, 3, 60,
                                            new_node_ratio=0.9, seed=9)
        later = puls[-1]
        new_targets = sum(1 for op in later if op.target not in xmark)
        assert new_targets > 30

    def test_source_document_untouched(self, xmark):
        snapshot = canonical_string(xmark.root, with_ids=True)
        generate_sequential_puls(xmark, 3, 40, seed=10)
        assert canonical_string(xmark.root, with_ids=True) == snapshot


class TestMinDepth:
    def test_targets_respect_min_depth(self):
        from repro.xdm.navigation import depth
        document = parse_document(
            "<r><s><c>t</c></s><u><v>w</v></u></r>")
        pul = generate_pul(document, 8, seed=1, min_depth=2)
        for op in pul:
            assert depth(document.find(op.target)) >= 2

    def test_unreachable_depth_raises_cleanly(self):
        from repro.errors import ReproError
        document = parse_document("<a><b/></a>")
        with pytest.raises(ReproError, match="target pools are too small"):
            generate_pul(document, 5, min_depth=5)

    def test_sparse_pools_terminate(self):
        # replaceValue can never draw here (no texts/attributes at the
        # depth); generation must still finish rather than spin forever
        document = parse_document("<a><b/></a>")
        pul = generate_pul(document, 9, min_depth=1)
        assert len(pul) == 9
