"""The concurrent-client workload generator."""

import pytest

from repro.pul.ops import InsertAttributes
from repro.pul.pul import PUL, merge
from repro.pul.semantics import apply_pul
from repro.reduction import reduce_deterministic
from repro.workloads import generate_client_batches
from repro.xdm.parser import parse_document
from repro.xdm.serializer import serialize

DOC = ("<bib><paper><title>T1</title><authors><author>A</author>"
       "</authors></paper><paper><title>T2</title></paper>"
       "<note>n</note></bib>")


@pytest.fixture
def document():
    return parse_document(DOC)


class TestShape:
    def test_round_and_client_structure(self, document):
        batches, final = generate_client_batches(
            document, clients=3, rounds=4, ops_per_round=9, seed=1)
        assert len(batches) == 4
        for submissions in batches:
            assert 1 <= len(submissions) <= 3
            assert sum(len(pul) for __, pul in submissions) == 9
            names = [client for client, __ in submissions]
            assert names == sorted(set(names), key=names.index)
            for client, pul in submissions:
                assert pul.origin == client

    def test_source_document_untouched(self, document):
        before = serialize(document)
        generate_client_batches(document, clients=2, rounds=3,
                                ops_per_round=6, seed=2)
        assert serialize(document) == before

    def test_deterministic(self, document):
        first, final1 = generate_client_batches(
            document, clients=2, rounds=3, ops_per_round=6, seed=5)
        second, final2 = generate_client_batches(
            document, clients=2, rounds=3, ops_per_round=6, seed=5)
        assert serialize(final1) == serialize(final2)
        for round1, round2 in zip(first, second):
            for (c1, p1), (c2, p2) in zip(round1, round2):
                assert c1 == c2 and p1 == p2

    def test_rejects_zero_clients(self, document):
        with pytest.raises(ValueError):
            generate_client_batches(document, clients=0)


class TestSemantics:
    def test_rounds_union_compatible(self, document):
        batches, __ = generate_client_batches(
            document, clients=4, rounds=3, ops_per_round=12, seed=3)
        for submissions in batches:
            union = submissions[0][1]
            for __, pul in submissions[1:]:
                union = merge(union, pul)  # raises on incompatibility

    def test_attribute_names_unique_across_rounds(self, document):
        batches, final = generate_client_batches(
            document, clients=2, rounds=5, ops_per_round=10, seed=4)
        names = []
        for submissions in batches:
            for __, pul in submissions:
                for op in pul:
                    if isinstance(op, InsertAttributes):
                        names.extend(t.name for t in op.trees)
        assert len(names) == len(set(names))
        for element in final.nodes():
            if element.is_element:
                attrs = [a.name for a in element.attributes]
                assert len(attrs) == len(set(attrs))

    def test_final_document_matches_sequential_replay(self, document):
        """Replaying each round (client unions in client order, reduced,
        applied) reproduces the advertised final document."""
        batches, final = generate_client_batches(
            document, clients=3, rounds=4, ops_per_round=8, seed=6)
        working = document.copy()
        for submissions in batches:
            ops = [op for __, pul in submissions for op in pul]
            reduced = reduce_deterministic(PUL(ops), structure=working)
            apply_pul(working, reduced, check=False, preserve_ids=True)
        assert serialize(working) == serialize(final)

    def test_later_rounds_target_earlier_insertions(self, document):
        """With enough rounds some operation targets a node that did not
        exist in the source document — the statefulness the store must
        get right."""
        source_ids = set(document.node_ids())
        batches, __ = generate_client_batches(
            document, clients=2, rounds=6, ops_per_round=10, seed=7)
        targets = {op.target for submissions in batches[1:]
                   for __, pul in submissions for op in pul}
        assert targets - source_ids
