"""Tests for the conflict-controlled integration workload."""

import pytest

from repro.integration import detect_conflicts, reconcile
from repro.pul.semantics import apply_pul
from repro.reasoning import DocumentOracle
from repro.workloads import generate_conflicting_puls, generate_xmark


@pytest.fixture(scope="module")
def xmark():
    return generate_xmark(scale=0.05, seed=3)


class TestConflictGen:
    def test_planted_equals_detected(self, xmark):
        puls, planted = generate_conflicting_puls(
            xmark, pul_count=5, ops_per_pul=60, seed=1)
        __, conflicts = detect_conflicts(
            puls, structure=DocumentOracle(xmark))
        assert len(conflicts) == planted

    def test_conflicted_fraction_near_request(self, xmark):
        puls, __ = generate_conflicting_puls(
            xmark, pul_count=5, ops_per_pul=100,
            conflict_fraction=0.5, ops_per_conflict=5, seed=2)
        clean, conflicts = detect_conflicts(
            puls, structure=DocumentOracle(xmark))
        total = sum(len(p) for p in puls)
        in_conflict = total - len(clean)
        assert 0.35 <= in_conflict / total <= 0.65

    def test_each_pul_applicable(self, xmark):
        puls, __ = generate_conflicting_puls(
            xmark, pul_count=4, ops_per_pul=50, seed=3)
        for pul in puls:
            assert pul.is_applicable(xmark)

    def test_reconciliation_succeeds_without_policies(self, xmark):
        puls, __ = generate_conflicting_puls(
            xmark, pul_count=4, ops_per_pul=50, seed=4)
        oracle = DocumentOracle(xmark)
        result = reconcile(puls, policies={}, structure=oracle)
        working = xmark.copy()
        apply_pul(working, result)

    def test_conflict_types_spread(self, xmark):
        puls, __ = generate_conflicting_puls(
            xmark, pul_count=5, ops_per_pul=100, seed=5)
        __, conflicts = detect_conflicts(
            puls, structure=DocumentOracle(xmark))
        types = {int(c.conflict_type) for c in conflicts}
        assert {1, 2, 3, 4, 5} <= types
