"""Cross-client group commit: one leader fsync covers a whole train.

The contract under test: concurrent flushes share fsyncs but *no flush
ever returns before its own record is behind the synced horizon*, and a
record destroyed by a failed-fsync rollback fails its flush — even when
other records later re-fill its byte range and push the horizon past
its old end offset (the false-durable hazard).
"""

import os
import threading
import time

import pytest

import repro.store.durability.wal as wal_module
from repro.errors import DurabilityError
from repro.pul.ops import Rename
from repro.pul.pul import PUL
from repro.store import DocumentStore
from repro.store.durability.recovery import (
    DurabilityManager,
    DurabilityPolicy,
)
from repro.store.durability.wal import WalWriter, scan_wal


def _manager(tmp_path, **kwargs):
    manager = DurabilityManager(str(tmp_path / "wal"),
                                DurabilityPolicy("log"), **kwargs)
    manager.start()
    return manager


class TestCommitTrain:
    def test_concurrent_batches_share_fsyncs(self, tmp_path, monkeypatch):
        """N threads logging batches at once pay far fewer than N
        fsyncs, and every one of them still gets its record on disk."""
        manager = _manager(tmp_path)
        real_fsync = os.fsync
        calls = []

        def slow_fsync(fd):
            calls.append(fd)
            time.sleep(0.02)
            return real_fsync(fd)

        monkeypatch.setattr(wal_module.os, "fsync", slow_fsync)
        clients = 16
        barrier = threading.Barrier(clients)
        errors = []

        def log_one(version):
            barrier.wait()
            try:
                manager.log_batch("d", version, 1, "<x/>")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=log_one, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batch_fsyncs = len(calls)
        manager.close()
        assert not errors
        # amortization: simultaneous arrivals board a shared train
        # (worst case a handful of trains, never one fsync per record)
        assert batch_fsyncs < clients
        payloads, __, clean = scan_wal(manager._wal_path(0))
        assert clean
        assert len(payloads) == clients

    def test_group_window_holds_the_train_for_riders(self, tmp_path):
        manager = _manager(tmp_path, group_window=0.01)
        assert manager.group_window == 0.01
        manager.log_batch("d", 1, 1, "<x/>")  # leader sleeps, then syncs
        manager.close()
        payloads, __, clean = scan_wal(manager._wal_path(0))
        assert clean and len(payloads) == 1

    def test_ack_never_precedes_the_synced_horizon(self, tmp_path,
                                                   monkeypatch):
        """When log_batch returns, the record must already be readable
        below synced_size (the replication/recovery horizon)."""
        manager = _manager(tmp_path)
        horizons = []
        real_log_batch = manager.log_batch

        def checked(*args):
            real_log_batch(*args)
            writer = manager._writer
            horizons.append(writer.synced_size >= writer.size)

        for version in range(4):
            checked("d", version, 1, "<x/>")
        manager.close()
        assert all(horizons)


class TestFsyncFailure:
    def test_failed_fsync_fails_the_flush_and_drops_the_record(
            self, tmp_path, monkeypatch):
        manager = _manager(tmp_path)
        real_fsync = os.fsync
        state = {"fail": True}

        def flaky_fsync(fd):
            if state["fail"]:
                state["fail"] = False
                raise OSError(28, "No space left on device")
            return real_fsync(fd)

        monkeypatch.setattr(wal_module.os, "fsync", flaky_fsync)
        with pytest.raises(DurabilityError):
            manager.log_batch("d", 1, 1, "<x/>")
        manager.log_batch("d", 2, 1, "<y/>")
        manager.close()
        payloads, __, clean = scan_wal(manager._wal_path(0))
        assert clean
        assert len(payloads) == 1
        assert b'"version":2' in payloads[0]

    def test_destroyed_record_is_not_resurrected_by_later_syncs(
            self, tmp_path, monkeypatch):
        """Offsets of a rolled-back record may be re-filled by later
        records; the current horizon passing the old end offset must
        not read as durability (first-rollback target decides)."""
        manager = _manager(tmp_path)
        writer = manager._writer
        epoch = writer.rollback_epoch
        end = writer.append(b"doomed-record", sync=False)
        real_fsync = os.fsync
        state = {"fail": True}

        def flaky_fsync(fd):
            if state["fail"]:
                state["fail"] = False
                raise OSError(28, "No space left on device")
            return real_fsync(fd)

        monkeypatch.setattr(wal_module.os, "fsync", flaky_fsync)
        with pytest.raises(DurabilityError):
            writer.sync()
        # re-fill the destroyed record's byte range and beyond
        while writer.size < end:
            writer.append(b"refill-record-with-longer-payload",
                          sync=False)
        writer.sync()
        assert writer.synced_size >= end
        assert manager._commit_status(writer, end, epoch) == "lost"
        manager.close()


class TestAppendFailure:
    def test_failed_append_preserves_earlier_unsynced_records(
            self, tmp_path):
        """A torn append rolls back to the last *complete* record, not
        the synced horizon — other waiters' unsynced records survive
        and the next sync still covers them."""

        class FlakyFile:
            def __init__(self, inner):
                self.inner = inner
                self.fail = True

            def write(self, data):
                if self.fail:
                    self.fail = False
                    raise OSError(28, "No space left on device")
                return self.inner.write(data)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        writer = WalWriter(str(tmp_path / "seg.log"))
        writer.append(b"one", sync=False)
        writer._file = FlakyFile(writer._file)
        with pytest.raises(DurabilityError):
            writer.append(b"two", sync=False)
        writer.append(b"three", sync=False)
        writer.sync()
        writer.close()
        payloads, __, clean = scan_wal(str(tmp_path / "seg.log"))
        assert clean
        assert payloads == [b"one", b"three"]


class TestStoreIntegration:
    def test_concurrent_document_flushes_all_durable(self, tmp_path):
        """Flushes of distinct documents ride one train; recovery sees
        every acknowledged batch."""
        doc = "<bib><paper><title>T</title></paper></bib>"
        docs = ["d{}".format(i) for i in range(6)]
        with DocumentStore(backend="serial", durability="log",
                           wal_dir=str(tmp_path / "wal")) as store:
            for doc_id in docs:
                entry = store.open(doc_id, doc)
                title = next(n.node_id for n in entry.document.nodes()
                             if n.is_element and n.name == "title")
                store.submit(doc_id, PUL([Rename(title, "headline")]))
            barrier = threading.Barrier(len(docs))
            errors = []

            def flush_one(doc_id):
                barrier.wait()
                try:
                    store.flush(doc_id)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=flush_one, args=(d,))
                       for d in docs]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            expected = {doc_id: store.text(doc_id) for doc_id in docs}
        with DocumentStore(backend="serial", durability="log",
                           wal_dir=str(tmp_path / "wal")) as recovered:
            for doc_id in docs:
                assert recovered.version(doc_id) == 1
                assert recovered.text(doc_id) == expected[doc_id]
                assert "headline" in recovered.text(doc_id)
