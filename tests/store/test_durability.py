"""The durable store: snapshot fidelity, recovery identity, compaction.

The central property is *state identity*: a recovered store must equal
the pre-crash store not just in document bytes but in node identifiers,
allocator position, version counters, and — because the replayed tail
runs through the incremental-relabel machinery — in every containment
label digit. The helpers below capture and compare that full state.
"""

import os
import threading

import pytest

from repro.errors import DurabilityError, ReproError
from repro.store import (
    DocumentStore,
    DurabilityPolicy,
    replay_oracle,
)
from repro.store.durability import (
    document_payload,
    load_durable_state,
    restore_document,
)
from repro.workloads import generate_client_batches, generate_xmark
from repro.xdm.serializer import serialize

DOC = ("<bib><paper year=\"2011\"><title>T1</title></paper>"
       "<paper year=\"2024\"><title>T2</title></paper></bib>")


@pytest.fixture(scope="module")
def workload():
    document = generate_xmark(scale=0.02, seed=7)
    batches, expected = generate_client_batches(
        document, clients=3, rounds=5, ops_per_round=10, seed=3)
    return serialize(document), batches, serialize(expected)


def _full_state(store, doc_id):
    """Everything recovery must reproduce, as a comparable value."""
    entry = store._require(doc_id)
    return {
        "text": store.text(doc_id),
        "ids": sorted(entry.document.node_ids()),
        "next_id": entry.document.allocator.next_value,
        "version": entry.version,
        "batches": entry.batches,
        "incremental_relabels": entry.incremental_relabels,
        "full_relabels": entry.full_relabels,
        "labels": {node_id: label.to_string()
                   for node_id, label
                   in entry.labeling.as_mapping().items()},
        "max_code_length": entry.labeling.max_code_length,
    }


def _run_session(store, batches, doc_id="d"):
    for submissions in batches:
        for client, pul in submissions:
            store.submit(doc_id, pul.copy(), client=client)
        store.flush(doc_id)


def _durable_store(tmp_path, spec, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "serial")
    return DocumentStore(durability=spec, wal_dir=str(tmp_path / "wal"),
                         **kwargs)


class TestPolicy:
    def test_parse_specs(self):
        assert DurabilityPolicy.parse("off").mode == "off"
        assert DurabilityPolicy.parse("log").mode == "log"
        policy = DurabilityPolicy.parse("log+snapshot:3")
        assert policy.mode == "snapshot" and policy.snapshot_every == 3
        assert DurabilityPolicy.parse("snapshot").mode == "snapshot"
        with pytest.raises(DurabilityError):
            DurabilityPolicy.parse("sometimes")
        with pytest.raises(DurabilityError):
            DurabilityPolicy("snapshot", snapshot_every=0)

    def test_durable_policy_requires_wal_dir(self):
        with pytest.raises(ReproError):
            DocumentStore(durability="log")

    def test_wal_dir_implies_log_policy(self, tmp_path):
        with DocumentStore(backend="serial",
                           wal_dir=str(tmp_path / "w")) as store:
            assert store.durability_policy.mode == "log"


class TestSnapshotFidelity:
    def test_document_payload_round_trip(self, tmp_path):
        with _durable_store(tmp_path, "log") as store:
            entry = store.open("d", DOC)
            before = _full_state(store, "d")
            restored = restore_document(document_payload(entry))
        assert serialize(restored.document) == before["text"]
        assert sorted(restored.document.node_ids()) == before["ids"]
        assert restored.document.allocator.next_value == before["next_id"]
        assert {node_id: label.to_string()
                for node_id, label
                in restored.labeling.as_mapping().items()} \
            == before["labels"]
        assert restored.labeling.max_code_length \
            == before["max_code_length"]


class TestRecovery:
    @pytest.mark.parametrize("spec", ["log", "log+snapshot:2"])
    def test_recovered_state_is_identical(self, tmp_path, workload, spec):
        text, batches, expected = workload
        with _durable_store(tmp_path, spec) as store:
            store.open("d", text)
            _run_session(store, batches)
            before = _full_state(store, "d")
        assert before["text"] == expected
        with _durable_store(tmp_path, spec) as recovered:
            assert recovered.recovery is not None
            assert _full_state(recovered, "d") == before
            oracle = replay_oracle(str(tmp_path / "wal"))
            assert oracle["d"] == (before["text"], before["version"])

    def test_recovered_store_keeps_serving(self, tmp_path, workload):
        """Recovery is a working store, not a read-only reconstruction:
        post-recovery flushes log and recover again."""
        text, batches, __ = workload
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            _run_session(store, batches[:3])
        with _durable_store(tmp_path, "log") as resumed:
            _run_session(resumed, batches[3:])
            after = _full_state(resumed, "d")
        with _durable_store(tmp_path, "log") as again:
            assert _full_state(again, "d") == after

    def test_torn_final_record_recovers_prefix(self, tmp_path, workload):
        text, batches, __ = workload
        states = {}
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            for submissions in batches:
                for client, pul in submissions:
                    store.submit("d", pul.copy(), client=client)
                store.flush("d")
                states[store.version("d")] = _full_state(store, "d")
        wal_path = str(tmp_path / "wal" / "wal-00000000.log")
        with open(wal_path, "r+b") as handle:
            handle.truncate(os.path.getsize(wal_path) - 11)
        with _durable_store(tmp_path, "log") as recovered:
            assert not recovered.recovery.clean
            version = recovered.version("d")
            assert version == len(batches) - 1
            assert _full_state(recovered, "d") == states[version]

    def test_close_document_is_durable(self, tmp_path):
        with _durable_store(tmp_path, "log") as store:
            store.open("a", DOC)
            store.open("b", DOC)
            store.close_document("a")
        with _durable_store(tmp_path, "log") as recovered:
            assert recovered.doc_ids() == ["b"]

    def test_failed_coalesce_keeps_label_timeline(self, tmp_path):
        """A rejected batch rebuilds the labeling; the relabel record
        replays that rebuild so later incremental codes match."""
        from repro.pul.ops import Rename
        from repro.pul.pul import PUL
        from repro.xdm.parser import parse_document

        document = parse_document(DOC)
        title = next(document.elements_by_name("title"))
        with _durable_store(tmp_path, "log") as store:
            store.open("d", DOC)
            # two clients renaming the same node differently: the union
            # is incompatible, the flush is rejected
            store.submit("d", PUL([Rename(title.node_id, "x")]),
                         client="alice")
            store.submit("d", PUL([Rename(title.node_id, "y")]),
                         client="bob")
            with pytest.raises(ReproError):
                store.flush("d")
            store.discard_pending("d")
            store.submit("d", PUL([Rename(title.node_id, "headline")]),
                         client="alice")
            store.flush("d")
            before = _full_state(store, "d")
        with _durable_store(tmp_path, "log") as recovered:
            assert _full_state(recovered, "d") == before

    def test_crash_before_relabel_record_still_converges(
            self, tmp_path, monkeypatch):
        """A batch that fails mid-apply is logged write-ahead; the live
        flush rebuilds the labeling and then logs a relabel record. A
        crash can land *between* those two appends, leaving the failing
        batch on disk with no relabel after it — replay must rebuild on
        its own or the labeling stays in the mid-apply mutated state
        and every later batch's incremental codes diverge."""
        from repro.pul.ops import InsertAttributes, Rename
        from repro.pul.pul import PUL
        from repro.store.durability.recovery import DurabilityManager
        from repro.xdm.node import Node
        from repro.xdm.parser import parse_document

        document = parse_document(DOC)
        paper = next(document.elements_by_name("paper"))
        title = next(document.elements_by_name("title"))
        real_relabel = DurabilityManager.log_relabel
        with _durable_store(tmp_path, "log") as store:
            store.open("d", DOC)
            # a duplicate attribute passes coalescing and reduction, is
            # logged write-ahead, labels the fresh attribute node, and
            # only then fails — deterministically, live and at replay
            store.submit(
                "d", PUL([InsertAttributes(
                    paper.node_id, [Node.attribute("year", "1999")])]),
                client="alice")
            # simulate the crash window: the batch record reached disk,
            # the relabel record never did
            monkeypatch.setattr(DurabilityManager, "log_relabel",
                                lambda self, doc_id: None)
            with pytest.raises(ReproError):
                store.flush("d")
            monkeypatch.setattr(DurabilityManager, "log_relabel",
                                real_relabel)
            store.discard_pending("d")
            # a later good batch: its incremental codes depend on the
            # post-failure rebuild
            store.submit("d", PUL([Rename(title.node_id, "headline")]),
                         client="alice")
            store.flush("d")
            before = _full_state(store, "d")
        with _durable_store(tmp_path, "log") as recovered:
            assert _full_state(recovered, "d") == before

    def test_environmental_apply_failure_skips_on_replay(
            self, tmp_path, workload, monkeypatch):
        """A batch logged write-ahead whose application then failed is
        skipped identically at replay; recovered bytes match the oracle
        even though the original failure was environmental."""
        import repro.store.store as store_module

        text, batches, __ = workload
        real_apply = store_module.apply_batch_in_place
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            _run_session(store, batches[:2])
            for client, pul in batches[2]:
                store.submit("d", pul.copy(), client=client)

            def exploding_apply(*args, **kwargs):
                raise ReproError("simulated mid-apply crash")

            monkeypatch.setattr(store_module, "apply_batch_in_place",
                                exploding_apply)
            with pytest.raises(ReproError):
                store.flush("d")
            monkeypatch.setattr(store_module, "apply_batch_in_place",
                                real_apply)
            store.flush("d")  # same pending, now succeeds
            before_text = store.text("d")
            before_version = store.version("d")
        with _durable_store(tmp_path, "log") as recovered:
            assert recovered.text("d") == before_text
            assert recovered.version("d") == before_version
            oracle = replay_oracle(str(tmp_path / "wal"))
            assert oracle["d"][0] == before_text


class TestWriterFailure:
    """A failed append must never bury later records behind torn bytes:
    recovery's prefix scan stops at the first invalid frame, so a torn
    record mid-segment silently truncates every acknowledged batch
    after it."""

    def test_transient_fsync_failure_rolls_back_torn_bytes(
            self, tmp_path, monkeypatch):
        import repro.store.durability.wal as wal_module

        path = str(tmp_path / "seg.log")
        writer = wal_module.WalWriter(path)
        writer.append(b"one")
        good_size = os.path.getsize(path)
        real_fsync = os.fsync
        state = {"fail": True}

        def flaky_fsync(fd):
            if state["fail"]:
                state["fail"] = False
                raise OSError(28, "No space left on device")
            return real_fsync(fd)

        monkeypatch.setattr(wal_module.os, "fsync", flaky_fsync)
        with pytest.raises(DurabilityError):
            writer.append(b"two")
        # the failed record's bytes are gone, not buried mid-segment
        assert os.path.getsize(path) == good_size
        writer.append(b"three")
        writer.close()
        payloads, __, clean = wal_module.scan_wal(path)
        assert clean
        assert payloads == [b"one", b"three"]

    def test_unrepairable_failure_poisons_writer(self, tmp_path,
                                                 monkeypatch):
        import repro.store.durability.wal as wal_module

        path = str(tmp_path / "seg.log")
        writer = wal_module.WalWriter(path)
        writer.append(b"one")

        def broken_fsync(fd):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(wal_module.os, "fsync", broken_fsync)
        with pytest.raises(DurabilityError):
            writer.append(b"two")
        # the rollback's own fsync failed too: nothing may be framed
        # after the possibly-torn tail
        with pytest.raises(DurabilityError):
            writer.append(b"three")
        writer.close()


class TestServiceSnapshot:
    def test_busy_compaction_is_not_reported_as_non_durable(
            self, tmp_path):
        from repro.store import StoreService

        with _durable_store(tmp_path, "log") as store:
            service = StoreService(store)
            store._compacting.acquire()
            try:
                response = service.handle_line("snapshot")
            finally:
                store._compacting.release()
            assert response.startswith("error snapshot skipped")
            assert "retry" in response
            assert service.handle_line("snapshot") \
                == "ok snapshot generation=0"

    def test_non_durable_store_is_reported_as_such(self):
        from repro.store import StoreService

        with DocumentStore(backend="serial") as store:
            response = StoreService(store).handle_line("snapshot")
            assert response == ("error store is not durable (no "
                                "snapshot written)")


class TestCompaction:
    def test_snapshot_rotates_and_deletes(self, tmp_path, workload):
        text, batches, __ = workload
        wal_dir = tmp_path / "wal"
        with _durable_store(tmp_path, "log+snapshot:2") as store:
            store.open("d", text)
            _run_session(store, batches)
        names = sorted(os.listdir(str(wal_dir)))
        snaps = [n for n in names if n.startswith("snapshot-")]
        wals = [n for n in names if n.startswith("wal-")]
        assert len(snaps) == 1, names
        assert len(wals) == 1, names
        # the surviving segment belongs to the generation after the
        # surviving snapshot
        snap_gen = int(snaps[0].split("-")[1].split(".")[0])
        wal_gen = int(wals[0].split("-")[1].split(".")[0])
        assert wal_gen == snap_gen + 1

    def test_explicit_snapshot_bounds_replay(self, tmp_path, workload):
        text, batches, __ = workload
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            _run_session(store, batches)
            generation = store.snapshot()
            assert generation is not None
            before = _full_state(store, "d")
        with _durable_store(tmp_path, "log") as recovered:
            assert recovered.recovery.replayed_batches == 0
            assert recovered.recovery.snapshot_generation == generation
            assert _full_state(recovered, "d") == before

    def test_snapshot_survives_inflight_flush_of_another_document(
            self, tmp_path):
        """Compaction must never block on a flush lock while holding
        the store lock: flush and close take ``flush_lock`` first and
        the store lock second, so that order deadlocks against any
        in-flight flush of another document. Hold one document's flush
        lock the way a flush does and require the snapshot to finish."""
        with _durable_store(tmp_path, "log") as store:
            store.open("a", DOC)
            store.open("b", DOC)
            entry_b = store._entries["b"]
            holding = threading.Event()
            release = threading.Event()

            def inflight_flush():
                # the flush path's lock order: flush_lock, store lock
                with entry_b.flush_lock:
                    holding.set()
                    release.wait(10)
                    with store._lock:
                        pass

            sealed = []
            flusher = threading.Thread(target=inflight_flush, daemon=True)
            snapshotter = threading.Thread(
                target=lambda: sealed.append(store.snapshot()),
                daemon=True)
            flusher.start()
            assert holding.wait(10)
            snapshotter.start()
            # let the snapshot reach the flush-lock wait; opening a
            # document meanwhile must also not block (it takes only the
            # store lock) and forces the compaction's revalidate+retry
            snapshotter.join(0.2)
            store.open("c", DOC)
            release.set()
            snapshotter.join(10)
            flusher.join(10)
            assert not snapshotter.is_alive(), "compaction deadlocked"
            assert not flusher.is_alive(), "flush deadlocked"
            assert sealed == [0]
        with _durable_store(tmp_path, "log") as recovered:
            assert recovered.recovery.snapshot_generation == 0
            assert sorted(recovered.doc_ids()) == ["a", "b", "c"]

    def test_snapshot_on_non_durable_store_is_refused(self):
        with DocumentStore(backend="serial") as store:
            assert store.snapshot() is None

    def test_load_state_reports_generations(self, tmp_path, workload):
        text, batches, __ = workload
        with _durable_store(tmp_path, "log+snapshot:3") as store:
            store.open("d", text)
            _run_session(store, batches)
        state = load_durable_state(str(tmp_path / "wal"))
        assert state.snapshot_generation is not None
        assert state.clean
