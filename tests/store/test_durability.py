"""The durable store: snapshot fidelity, recovery identity, compaction.

The central property is *state identity*: a recovered store must equal
the pre-crash store not just in document bytes but in node identifiers,
allocator position, version counters, and — because the replayed tail
runs through the incremental-relabel machinery — in every containment
label digit. The helpers below capture and compare that full state.
"""

import os

import pytest

from repro.errors import DurabilityError, ReproError
from repro.store import (
    DocumentStore,
    DurabilityPolicy,
    replay_oracle,
)
from repro.store.durability import (
    document_payload,
    load_durable_state,
    restore_document,
)
from repro.workloads import generate_client_batches, generate_xmark
from repro.xdm.serializer import serialize

DOC = ("<bib><paper year=\"2011\"><title>T1</title></paper>"
       "<paper year=\"2024\"><title>T2</title></paper></bib>")


@pytest.fixture(scope="module")
def workload():
    document = generate_xmark(scale=0.02, seed=7)
    batches, expected = generate_client_batches(
        document, clients=3, rounds=5, ops_per_round=10, seed=3)
    return serialize(document), batches, serialize(expected)


def _full_state(store, doc_id):
    """Everything recovery must reproduce, as a comparable value."""
    entry = store._require(doc_id)
    return {
        "text": store.text(doc_id),
        "ids": sorted(entry.document.node_ids()),
        "next_id": entry.document.allocator.next_value,
        "version": entry.version,
        "batches": entry.batches,
        "incremental_relabels": entry.incremental_relabels,
        "full_relabels": entry.full_relabels,
        "labels": {node_id: label.to_string()
                   for node_id, label
                   in entry.labeling.as_mapping().items()},
        "max_code_length": entry.labeling.max_code_length,
    }


def _run_session(store, batches, doc_id="d"):
    for submissions in batches:
        for client, pul in submissions:
            store.submit(doc_id, pul.copy(), client=client)
        store.flush(doc_id)


def _durable_store(tmp_path, spec, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "serial")
    return DocumentStore(durability=spec, wal_dir=str(tmp_path / "wal"),
                         **kwargs)


class TestPolicy:
    def test_parse_specs(self):
        assert DurabilityPolicy.parse("off").mode == "off"
        assert DurabilityPolicy.parse("log").mode == "log"
        policy = DurabilityPolicy.parse("log+snapshot:3")
        assert policy.mode == "snapshot" and policy.snapshot_every == 3
        assert DurabilityPolicy.parse("snapshot").mode == "snapshot"
        with pytest.raises(DurabilityError):
            DurabilityPolicy.parse("sometimes")
        with pytest.raises(DurabilityError):
            DurabilityPolicy("snapshot", snapshot_every=0)

    def test_durable_policy_requires_wal_dir(self):
        with pytest.raises(ReproError):
            DocumentStore(durability="log")

    def test_wal_dir_implies_log_policy(self, tmp_path):
        with DocumentStore(backend="serial",
                           wal_dir=str(tmp_path / "w")) as store:
            assert store.durability_policy.mode == "log"


class TestSnapshotFidelity:
    def test_document_payload_round_trip(self, tmp_path):
        with _durable_store(tmp_path, "log") as store:
            entry = store.open("d", DOC)
            before = _full_state(store, "d")
            restored = restore_document(document_payload(entry))
        assert serialize(restored.document) == before["text"]
        assert sorted(restored.document.node_ids()) == before["ids"]
        assert restored.document.allocator.next_value == before["next_id"]
        assert {node_id: label.to_string()
                for node_id, label
                in restored.labeling.as_mapping().items()} \
            == before["labels"]
        assert restored.labeling.max_code_length \
            == before["max_code_length"]


class TestRecovery:
    @pytest.mark.parametrize("spec", ["log", "log+snapshot:2"])
    def test_recovered_state_is_identical(self, tmp_path, workload, spec):
        text, batches, expected = workload
        with _durable_store(tmp_path, spec) as store:
            store.open("d", text)
            _run_session(store, batches)
            before = _full_state(store, "d")
        assert before["text"] == expected
        with _durable_store(tmp_path, spec) as recovered:
            assert recovered.recovery is not None
            assert _full_state(recovered, "d") == before
            oracle = replay_oracle(str(tmp_path / "wal"))
            assert oracle["d"] == (before["text"], before["version"])

    def test_recovered_store_keeps_serving(self, tmp_path, workload):
        """Recovery is a working store, not a read-only reconstruction:
        post-recovery flushes log and recover again."""
        text, batches, __ = workload
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            _run_session(store, batches[:3])
        with _durable_store(tmp_path, "log") as resumed:
            _run_session(resumed, batches[3:])
            after = _full_state(resumed, "d")
        with _durable_store(tmp_path, "log") as again:
            assert _full_state(again, "d") == after

    def test_torn_final_record_recovers_prefix(self, tmp_path, workload):
        text, batches, __ = workload
        states = {}
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            for submissions in batches:
                for client, pul in submissions:
                    store.submit("d", pul.copy(), client=client)
                store.flush("d")
                states[store.version("d")] = _full_state(store, "d")
        wal_path = str(tmp_path / "wal" / "wal-00000000.log")
        with open(wal_path, "r+b") as handle:
            handle.truncate(os.path.getsize(wal_path) - 11)
        with _durable_store(tmp_path, "log") as recovered:
            assert not recovered.recovery.clean
            version = recovered.version("d")
            assert version == len(batches) - 1
            assert _full_state(recovered, "d") == states[version]

    def test_close_document_is_durable(self, tmp_path):
        with _durable_store(tmp_path, "log") as store:
            store.open("a", DOC)
            store.open("b", DOC)
            store.close_document("a")
        with _durable_store(tmp_path, "log") as recovered:
            assert recovered.doc_ids() == ["b"]

    def test_failed_coalesce_keeps_label_timeline(self, tmp_path):
        """A rejected batch rebuilds the labeling; the relabel record
        replays that rebuild so later incremental codes match."""
        from repro.pul.ops import Rename
        from repro.pul.pul import PUL
        from repro.xdm.parser import parse_document

        document = parse_document(DOC)
        title = next(document.elements_by_name("title"))
        with _durable_store(tmp_path, "log") as store:
            store.open("d", DOC)
            # two clients renaming the same node differently: the union
            # is incompatible, the flush is rejected
            store.submit("d", PUL([Rename(title.node_id, "x")]),
                         client="alice")
            store.submit("d", PUL([Rename(title.node_id, "y")]),
                         client="bob")
            with pytest.raises(ReproError):
                store.flush("d")
            store.discard_pending("d")
            store.submit("d", PUL([Rename(title.node_id, "headline")]),
                         client="alice")
            store.flush("d")
            before = _full_state(store, "d")
        with _durable_store(tmp_path, "log") as recovered:
            assert _full_state(recovered, "d") == before

    def test_environmental_apply_failure_skips_on_replay(
            self, tmp_path, workload, monkeypatch):
        """A batch logged write-ahead whose application then failed is
        skipped identically at replay; recovered bytes match the oracle
        even though the original failure was environmental."""
        import repro.store.store as store_module

        text, batches, __ = workload
        real_apply = store_module.apply_streaming
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            _run_session(store, batches[:2])
            for client, pul in batches[2]:
                store.submit("d", pul.copy(), client=client)

            def exploding_apply(*args, **kwargs):
                raise ReproError("simulated mid-apply crash")

            monkeypatch.setattr(store_module, "apply_streaming",
                                exploding_apply)
            with pytest.raises(ReproError):
                store.flush("d")
            monkeypatch.setattr(store_module, "apply_streaming",
                                real_apply)
            store.flush("d")  # same pending, now succeeds
            before_text = store.text("d")
            before_version = store.version("d")
        with _durable_store(tmp_path, "log") as recovered:
            assert recovered.text("d") == before_text
            assert recovered.version("d") == before_version
            oracle = replay_oracle(str(tmp_path / "wal"))
            assert oracle["d"][0] == before_text


class TestCompaction:
    def test_snapshot_rotates_and_deletes(self, tmp_path, workload):
        text, batches, __ = workload
        wal_dir = tmp_path / "wal"
        with _durable_store(tmp_path, "log+snapshot:2") as store:
            store.open("d", text)
            _run_session(store, batches)
        names = sorted(os.listdir(str(wal_dir)))
        snaps = [n for n in names if n.startswith("snapshot-")]
        wals = [n for n in names if n.startswith("wal-")]
        assert len(snaps) == 1, names
        assert len(wals) == 1, names
        # the surviving segment belongs to the generation after the
        # surviving snapshot
        snap_gen = int(snaps[0].split("-")[1].split(".")[0])
        wal_gen = int(wals[0].split("-")[1].split(".")[0])
        assert wal_gen == snap_gen + 1

    def test_explicit_snapshot_bounds_replay(self, tmp_path, workload):
        text, batches, __ = workload
        with _durable_store(tmp_path, "log") as store:
            store.open("d", text)
            _run_session(store, batches)
            generation = store.snapshot()
            assert generation is not None
            before = _full_state(store, "d")
        with _durable_store(tmp_path, "log") as recovered:
            assert recovered.recovery.replayed_batches == 0
            assert recovered.recovery.snapshot_generation == generation
            assert _full_state(recovered, "d") == before

    def test_snapshot_on_non_durable_store_is_refused(self):
        with DocumentStore(backend="serial") as store:
            assert store.snapshot() is None

    def test_load_state_reports_generations(self, tmp_path, workload):
        text, batches, __ = workload
        with _durable_store(tmp_path, "log+snapshot:3") as store:
            store.open("d", text)
            _run_session(store, batches)
        state = load_durable_state(str(tmp_path / "wal"))
        assert state.snapshot_generation is not None
        assert state.clean
