"""Crash injection: SIGKILL a durable store mid-stream and recover.

The harness runs a real store process over a deterministic workload,
kills it with ``SIGKILL`` at a randomized point (so death lands between
arbitrary instructions — mid-append, mid-apply, mid-fsync), then
recovers the directory in-process and checks the two durability
guarantees:

* **prefix consistency** — the recovered state is byte-identical to the
  true pre-crash state at *some* flushed version (the log is always a
  valid prefix of the session), matching both the independently
  recomputed per-version texts and the stateless replay oracle;
* **acknowledged durability** — every batch the child acknowledged
  (printed after ``flush`` returned, i.e. after the WAL fsync) survives
  the crash.

A deterministic variant cuts the final segment at sampled byte offsets
instead of killing a process, which pins the same prefix property
without scheduler noise.
"""

import os
import random
import shutil
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.store import DocumentStore, StatelessBaseline, replay_oracle
from repro.workloads import generate_client_batches, generate_xmark
from repro.xdm.serializer import serialize

CLIENTS = 2
ROUNDS = 25
OPS_PER_ROUND = 6
WORKLOAD_SEED = 13

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "src")

CHILD_SCRIPT = textwrap.dedent("""
    import sys

    from repro.store import DocumentStore
    from repro.workloads import generate_client_batches, generate_xmark
    from repro.xdm.serializer import serialize

    wal_dir = sys.argv[1]
    document = generate_xmark(scale=0.02, seed=7)
    batches, __ = generate_client_batches(
        document, clients={clients}, rounds={rounds},
        ops_per_round={ops}, seed={seed})
    store = DocumentStore(workers=2, backend="serial",
                          durability="log", wal_dir=wal_dir)
    store.open("d", serialize(document))
    for submissions in batches:
        for client, pul in submissions:
            store.submit("d", pul.copy(), client=client)
        store.flush("d")
        # past this line the batch's WAL record is fsynced: the flush
        # is acknowledged and must survive any crash
        print("acked", store.version("d"), flush=True)
    store.close()
    print("done", flush=True)
""").format(clients=CLIENTS, rounds=ROUNDS, ops=OPS_PER_ROUND,
            seed=WORKLOAD_SEED)


@pytest.fixture(scope="module")
def expected_states():
    """``version -> serialized text`` recomputed by the stateless
    baseline, independently of the store and of the WAL."""
    document = generate_xmark(scale=0.02, seed=7)
    batches, __ = generate_client_batches(
        document, clients=CLIENTS, rounds=ROUNDS,
        ops_per_round=OPS_PER_ROUND, seed=WORKLOAD_SEED)
    baseline = StatelessBaseline(measure_parse=False)
    baseline.open("d", serialize(document))
    states = {0: baseline.text("d")}
    for submissions in batches:
        for client, pul in submissions:
            baseline.submit("d", pul.copy(), client=client)
        baseline.flush("d")
        states[baseline.version("d")] = baseline.text("d")
    return states


def _recover_and_check(wal_dir, expected_states, acked):
    with DocumentStore(workers=2, backend="serial", durability="log",
                       wal_dir=wal_dir) as recovered:
        if not recovered.doc_ids():
            # the cut fell inside the very first record: the valid
            # prefix is empty, which is only consistent if nothing was
            # ever acknowledged
            assert acked == 0
            assert replay_oracle(wal_dir) == {}
            return None
        assert recovered.doc_ids() == ["d"]
        version = recovered.version("d")
        text = recovered.text("d")
    assert version >= acked, (
        "acknowledged batch lost: recovered v{} < acked v{}".format(
            version, acked))
    assert text == expected_states[version], (
        "recovered v{} differs from the true pre-crash state".format(
            version))
    oracle = replay_oracle(wal_dir)
    assert oracle["d"] == (text, version)
    return version


@pytest.mark.parametrize("kill_seed", [0, 1, 2])
def test_sigkill_mid_flush_recovers_consistently(tmp_path, kill_seed,
                                                 expected_states):
    wal_dir = str(tmp_path / "wal")
    script = tmp_path / "child.py"
    script.write_text(CHILD_SCRIPT, encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-u", str(script), wal_dir],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
    try:
        # kill at a randomized point while batches are flushing; wait
        # for the first ack so the session is actually under way
        first = child.stdout.readline()
        assert first.startswith(b"acked"), first
        delay = random.Random(kill_seed).uniform(0.05, 0.9)
        try:
            child.wait(timeout=delay)
        except subprocess.TimeoutExpired:
            child.kill()  # SIGKILL: no handlers, no atexit, no flush
        out, err = child.communicate(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.communicate()
    acked = 0
    for line in (first + out).splitlines():
        if line.startswith(b"acked"):
            acked = max(acked, int(line.split()[1]))
    version = _recover_and_check(wal_dir, expected_states, acked)
    assert version <= ROUNDS


def test_truncation_point_sweep_recovers_a_valid_prefix(
        tmp_path, expected_states):
    """Crash = the log ends at an arbitrary byte. Sample cut points over
    the whole segment; every cut must recover to an exact flushed
    state."""
    wal_dir = str(tmp_path / "wal")
    document = generate_xmark(scale=0.02, seed=7)
    batches, __ = generate_client_batches(
        document, clients=CLIENTS, rounds=ROUNDS,
        ops_per_round=OPS_PER_ROUND, seed=WORKLOAD_SEED)
    with DocumentStore(workers=2, backend="serial", durability="log",
                       wal_dir=wal_dir) as store:
        store.open("d", serialize(document))
        for submissions in batches:
            for client, pul in submissions:
                store.submit("d", pul.copy(), client=client)
            store.flush("d")
    segment = os.path.join(wal_dir, "wal-00000000.log")
    size = os.path.getsize(segment)
    rng = random.Random(7)
    seen_versions = set()
    for cut in sorted(rng.sample(range(1, size), 8)):
        trial_dir = str(tmp_path / "cut-{}".format(cut))
        shutil.copytree(wal_dir, trial_dir)
        with open(os.path.join(trial_dir, "wal-00000000.log"),
                  "r+b") as handle:
            handle.truncate(cut)
        version = _recover_and_check(trial_dir, expected_states, acked=0)
        if version is not None:
            seen_versions.add(version)
    assert seen_versions, "no cut point recovered"


def test_sigterm_drains_queued_submissions(tmp_path):
    """``repro store serve``: SIGTERM flushes queued-but-unflushed PULs
    into the WAL before the store closes."""
    from repro.pul.ops import Rename
    from repro.pul.pul import PUL
    from repro.pul.serialize import pul_to_xml
    from repro.xdm.parser import parse_document

    doc_text = "<bib><paper><title>T1</title></paper></bib>"
    doc_path = tmp_path / "doc.xml"
    doc_path.write_text(doc_text, encoding="utf-8")
    document = parse_document(doc_text)
    title = next(document.elements_by_name("title"))
    pul_path = tmp_path / "rename.pul"
    pul_path.write_text(
        pul_to_xml(PUL([Rename(title.node_id, "headline")],
                       origin="alice")),
        encoding="utf-8")
    wal_dir = str(tmp_path / "wal")
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "store", "serve",
         "--backend", "serial", "--wal-dir", wal_dir],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, env=env)
    try:
        child.stdin.write("open d1 {}\nsubmit d1 {} alice\n".format(
            doc_path, pul_path).encode("utf-8"))
        child.stdin.flush()
        assert child.stdout.readline().startswith(b"ok opened")
        assert child.stdout.readline().startswith(b"ok queued")
        # stdin stays open: the only way out is the signal
        child.send_signal(signal.SIGTERM)
        out, err = child.communicate(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.communicate()
    assert child.returncode == 0, err
    assert b"ok drained batches=1" in out
    with DocumentStore(workers=2, backend="serial", durability="log",
                       wal_dir=wal_dir) as recovered:
        assert recovered.version("d1") == 1
        assert "<headline>T1</headline>" in recovered.text("d1")


def test_eof_drains_queued_submissions(tmp_path):
    """EOF on the command stream flushes pending work before close (the
    in-process path — no signals involved)."""
    import io

    from repro.pul.ops import Rename
    from repro.pul.pul import PUL
    from repro.pul.serialize import pul_to_xml
    from repro.store import StoreService
    from repro.xdm.parser import parse_document

    doc_text = "<bib><paper><title>T1</title></paper></bib>"
    doc_path = tmp_path / "doc.xml"
    doc_path.write_text(doc_text, encoding="utf-8")
    document = parse_document(doc_text)
    title = next(document.elements_by_name("title"))
    pul_path = tmp_path / "rename.pul"
    pul_path.write_text(
        pul_to_xml(PUL([Rename(title.node_id, "headline")])),
        encoding="utf-8")
    store = DocumentStore(workers=2, backend="serial",
                          durability="log",
                          wal_dir=str(tmp_path / "wal"))
    service = StoreService(store)
    out = io.StringIO()
    commands = "open d1 {}\nsubmit d1 {}\n".format(doc_path, pul_path)
    service.serve(io.StringIO(commands), out)
    assert service.closed
    assert "ok drained batches=1" in out.getvalue()
    with DocumentStore(workers=2, backend="serial", durability="log",
                       wal_dir=str(tmp_path / "wal")) as recovered:
        assert recovered.version("d1") == 1
        assert "<headline>T1</headline>" in recovered.text("d1")
