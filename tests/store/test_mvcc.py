"""MVCC snapshot-tree semantics: store-README invariant 9.

Every read observes exactly one *published* version — never a torn
intermediate, never a blend of two versions — and writes never block
reads. The oracle is :class:`StatelessBaseline`: the same batch
sequence is run through the baseline first, recording the serialized
text of every published version; any ``(version, text)`` pair a
concurrent reader then observes from the MVCC store must byte-match
that timeline.
"""

import threading
import time

import pytest

import repro.store.store as store_module
from repro.errors import DurabilityError
from repro.pul.ops import Rename
from repro.pul.pul import PUL
from repro.store import DocumentStore, StatelessBaseline
from repro.xdm.serializer import serialize

DOC = ("<bib><paper><title>T1</title><authors><author>A</author>"
       "</authors></paper><paper><title>T2</title></paper>"
       "<note>n</note></bib>")


def _id_of(document, name):
    return next(n.node_id for n in document.nodes()
                if n.is_element and n.name == name)


def _batch_specs(document, rounds):
    """``rounds`` rename batches addressing stable node ids (renames
    keep identifiers, so one id lookup serves the whole sequence)."""
    title = _id_of(document, "title")
    author = _id_of(document, "author")
    return [[(title, "t{}".format(i)), (author, "a{}".format(i))]
            for i in range(rounds)]


def _baseline_timeline(specs):
    """``{version: text}`` of every version the batch sequence
    publishes, computed by the stateless differential oracle."""
    baseline = StatelessBaseline(measure_parse=False)
    baseline.open("d", DOC)
    timeline = {0: baseline.text("d")}
    for spec in specs:
        baseline.submit("d", PUL([Rename(t, name) for t, name in spec]))
        baseline.flush("d")
        timeline[baseline.version("d")] = baseline.text("d")
    return timeline


class _StalledApplyWindow:
    """Patch the batch applier to park mid-flush: the flush signals
    ``in_window`` with the batch logged but not yet published, and only
    proceeds once ``release`` is set."""

    def __init__(self, monkeypatch):
        self.in_window = threading.Event()
        self.release = threading.Event()
        real_apply = store_module.apply_batch_in_place

        def stalled_apply(document, labeling, pul, preserve_ids=True):
            self.in_window.set()
            self.release.wait(10)
            return real_apply(document, labeling, pul,
                              preserve_ids=preserve_ids)

        monkeypatch.setattr(store_module, "apply_batch_in_place",
                            stalled_apply)


class TestReadersVersusWriter:
    def test_threaded_readers_observe_only_published_versions(
            self, monkeypatch):
        """The satellite stress suite: reader threads hammer ``text`` /
        ``stats`` / ``query`` while a writer flushes the whole batch
        sequence; every observation must byte-match the baseline
        timeline at the version it reports, and per-reader versions
        must be monotone (a published version never un-publishes)."""
        rounds = 25
        with DocumentStore(backend="serial") as probe:
            probe.open("d", DOC)
            specs = _batch_specs(probe.document("d"), rounds)
        timeline = _baseline_timeline(specs)

        real_apply = store_module.apply_batch_in_place

        def slowed_apply(document, labeling, pul, preserve_ids=True):
            time.sleep(0.002)  # widen the apply window the readers race
            return real_apply(document, labeling, pul,
                              preserve_ids=preserve_ids)

        monkeypatch.setattr(store_module, "apply_batch_in_place",
                            slowed_apply)

        with DocumentStore(backend="serial") as store:
            store.open("d", DOC)
            stop = threading.Event()
            mismatches = []
            histories = [[] for _ in range(3)]

            def read_loop(history):
                while not stop.is_set():
                    text, version = store.text_version("d")
                    if timeline[version] != text:
                        mismatches.append(("text", version))
                    snap = store.stats("d")
                    if snap["version"] not in timeline:
                        mismatches.append(("stats", snap["version"]))
                    history.append(version)

            readers = [threading.Thread(target=read_loop, args=(h,),
                                        daemon=True) for h in histories]
            for reader in readers:
                reader.start()
            for spec in specs:
                store.submit("d", PUL([Rename(t, name)
                                       for t, name in spec]))
                store.flush("d")
            stop.set()
            for reader in readers:
                reader.join(10)
                assert not reader.is_alive(), "a reader blocked"

            assert not mismatches
            assert store.text("d") == timeline[rounds]
            observed = set().union(*histories)
            assert len(observed) >= 2, "the race never materialized"
            for history in histories:
                assert history == sorted(history), \
                    "a reader observed versions out of order"

    def test_reads_complete_while_a_flush_is_applying(self, monkeypatch):
        """No blocking: a read issued while the writer is mid-apply
        finishes *before* the flush does, reporting the still-current
        published version."""
        with DocumentStore(backend="serial") as store:
            store.open("d", DOC)
            before = store.text("d")
            title = _id_of(store.document("d"), "title")
            store.submit("d", PUL([Rename(title, "headline")]))
            window = _StalledApplyWindow(monkeypatch)

            flusher = threading.Thread(target=store.flush, args=("d",),
                                       daemon=True)
            flusher.start()
            assert window.in_window.wait(10)

            results = {}

            def read_everything():
                results["text"] = store.text_version("d")
                results["stats"] = store.stats("d")
                results["query"] = store.query("d", "/bib/note")

            reader = threading.Thread(target=read_everything, daemon=True)
            reader.start()
            reader.join(5)
            blocked = reader.is_alive()
            window.release.set()
            flusher.join(10)
            reader.join(10)
            assert not blocked, "reads blocked behind an applying flush"
            assert results["text"] == (before, 0)
            assert results["stats"]["version"] == 0
            assert results["query"]["version"] == 0
            assert store.version("d") == 1


class TestVersionPinning:
    def test_pinned_version_is_immutable_across_later_flushes(self):
        """A pinned version's tree never changes — even though retired
        versions are normally recycled into the next working copy, a
        live pin forces the writer onto the deep-copy fallback."""
        with DocumentStore(backend="serial") as store:
            store.open("d", DOC)
            entry = store._entries["d"]
            pinned = entry.pin()
            text0 = serialize(pinned.document)
            title = _id_of(store.document("d"), "title")
            for i in range(3):
                store.submit("d", PUL([Rename(title, "v{}".format(i))]))
                store.flush("d")
            assert store.version("d") == 3
            # the reader's world has not moved
            assert pinned.version == 0
            assert serialize(pinned.document) == text0
            entry.unpin(pinned)
            assert "<v2>" in store.text("d")

    def test_recycled_working_copy_matches_a_fresh_deep_copy(self):
        """The spare-recycling catch-up must be byte- and id-identical
        to what a from-scratch copy of the published version yields —
        consecutive unpinned flushes exercise exactly that path, and
        the inserts make the catch-up's deterministic fresh-id
        assignment observable (a replay allocating different ids would
        desynchronize every later batch's targets)."""
        with DocumentStore(backend="serial") as store:
            store.open("d", DOC)
            title = _id_of(store.document("d"), "title")
            for i in range(4):
                store.submit("d", PUL([Rename(title, "r{}".format(i))]))
                store.submit_xquery(
                    "d", "insert node <w{0}/> as last into /bib".format(i))
                store.flush("d")
            entry = store._entries["d"]
            document, labeling = entry.checkout()
            published = entry.published
            assert serialize(document) == store.text("d")
            assert sorted(document.node_ids()) \
                == sorted(published.document.node_ids())
            assert labeling.as_mapping() \
                == published.labeling.as_mapping()


class TestCaptureFence:
    def test_wait_published_times_out_on_a_stalled_writer(self):
        with DocumentStore(backend="serial") as store:
            store.open("d", DOC)
            entry = store._entries["d"]
            entry.mark_logged(entry.version + 1)
            with pytest.raises(DurabilityError, match="never published"):
                entry.wait_published(0.1)
            # unwind so close() paths stay clean
            entry.mark_logged(entry.version)

    def test_snapshot_waits_for_the_logged_batch_to_publish(
            self, tmp_path, monkeypatch):
        """Compaction during a mid-apply flush: the capture must wait
        out the logged-but-unpublished batch (a snapshot pairing the
        rotated log with a pre-batch payload would be fine — leading
        only — but one *missing an acked record* would not), and the
        compacted directory must recover to the post-batch state."""
        wal_dir = str(tmp_path / "wal")
        with DocumentStore(backend="serial", durability="log",
                           wal_dir=wal_dir) as store:
            store.open("d", DOC)
            title = _id_of(store.document("d"), "title")
            store.submit("d", PUL([Rename(title, "headline")]))
            window = _StalledApplyWindow(monkeypatch)

            flusher = threading.Thread(target=store.flush, args=("d",),
                                       daemon=True)
            flusher.start()
            assert window.in_window.wait(10)

            generations = []
            snapshotter = threading.Thread(
                target=lambda: generations.append(store.snapshot()),
                daemon=True)
            snapshotter.start()
            snapshotter.join(0.5)
            assert snapshotter.is_alive(), \
                "snapshot captured a logged-but-unpublished batch"
            window.release.set()
            flusher.join(10)
            snapshotter.join(10)
            assert not snapshotter.is_alive()
            assert generations and generations[0] is not None
            final = store.text("d")
        with DocumentStore(backend="serial", durability="log",
                           wal_dir=wal_dir) as recovered:
            assert recovered.text("d") == final
            assert recovered.version("d") == 1
