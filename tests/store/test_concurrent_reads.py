"""Regression tests for reads racing in-place flushes.

PR 6 made flushed batches mutate the resident tree *in place*, which
turned every unlocked read into a torn-read bug: a reader walking the
tree mid-batch could serialize a half-applied state that never existed
as a published version. These tests provoke the race deterministically
by wrapping the batch applier so the tree passes through an observable
intermediate state while readers run.

The assertions are behavioral — "a reader observes the pre-batch or the
post-batch state, never anything between, and the version number it
reports pairs with the state it saw" — so they hold for any correct
implementation: serializing reads behind the flush lock or pinning an
immutable published version (MVCC).
"""

import threading

import pytest

import repro.store.store as store_module
from repro.errors import ReproError
from repro.pul.ops import Delete, Rename
from repro.pul.pul import PUL
from repro.store import DocumentStore

DOC = ("<bib><paper><title>T1</title><authors><author>A</author>"
       "</authors></paper><paper><title>T2</title></paper>"
       "<note>n</note></bib>")


def _ids_by_name(document, name):
    return [n.node_id for n in document.nodes()
            if n.is_element and n.name == name]


class _TornApplyWindow:
    """Patch the store's batch applier so the tree is visibly torn.

    Before running the real application the wrapper detaches the root's
    first child (an intermediate state no published version ever had),
    signals ``in_window``, and holds the tree torn until ``release`` —
    any reader that observes the missing child during the window has
    read a torn state.
    """

    def __init__(self, monkeypatch):
        self.in_window = threading.Event()
        self.release = threading.Event()
        real_apply = store_module.apply_batch_in_place

        def torn_apply(document, labeling, pul, preserve_ids=True):
            first = document.root.children[0]
            document.detach_node(first)
            self.in_window.set()
            self.release.wait(10)
            document.insert_children(document.root, 0, [first])
            return real_apply(document, labeling, pul,
                              preserve_ids=preserve_ids)

        monkeypatch.setattr(store_module, "apply_batch_in_place",
                            torn_apply)


class TestTornReads:
    def test_text_never_observes_a_half_applied_batch(self, monkeypatch):
        with DocumentStore(backend="serial") as store:
            store.open("d1", DOC)
            before = store.text("d1")
            title = _ids_by_name(store.document("d1"), "title")[0]
            store.submit("d1", PUL([Rename(title, "headline")]))
            window = _TornApplyWindow(monkeypatch)

            flusher = threading.Thread(target=store.flush, args=("d1",),
                                       daemon=True)
            flusher.start()
            assert window.in_window.wait(10)

            observed = []
            reader = threading.Thread(
                target=lambda: observed.append(store.text("d1")),
                daemon=True)
            reader.start()
            # give the reader real time to walk the torn tree if the
            # read path lets it through
            reader.join(0.3)
            window.release.set()
            reader.join(10)
            flusher.join(10)
            assert not reader.is_alive() and not flusher.is_alive()
            after = store.text("d1")
            assert "<headline>" in after
            # pre-batch or post-batch text — never the torn tree
            assert observed == [before] or observed == [after]

    def test_stats_pair_version_with_node_count(self, monkeypatch):
        with DocumentStore(backend="serial") as store:
            store.open("d1", DOC)
            nodes_before = store.stats("d1")["nodes"]
            victim = _ids_by_name(store.document("d1"), "authors")[0]
            store.submit("d1", PUL([Delete(victim)]))
            window = _TornApplyWindow(monkeypatch)

            flusher = threading.Thread(target=store.flush, args=("d1",),
                                       daemon=True)
            flusher.start()
            assert window.in_window.wait(10)

            observed = []
            reader = threading.Thread(
                target=lambda: observed.append(store.stats("d1")),
                daemon=True)
            reader.start()
            reader.join(0.3)
            window.release.set()
            reader.join(10)
            flusher.join(10)
            assert not reader.is_alive() and not flusher.is_alive()
            nodes_after = store.stats("d1")["nodes"]
            assert nodes_after < nodes_before
            (snap,) = observed
            # the (version, nodes) pair must describe one published
            # version: v0 with the pre-batch count or v1 with the
            # post-batch count — the torn window pairs v0 with neither
            assert (snap["version"], snap["nodes"]) in {
                (0, nodes_before), (1, nodes_after)}


class TestFlushAllClose:
    def test_close_during_flush_all_is_not_a_failure(self):
        with DocumentStore(backend="serial") as store:
            store.open("a", DOC)
            store.open("b", DOC)
            for doc_id in ("a", "b"):
                title = _ids_by_name(store.document(doc_id), "title")[0]
                store.submit(doc_id, PUL([Rename(title, "headline")]))

            real_flush = DocumentStore.flush

            def racing_flush(doc_id, num_shards=None):
                # "b" is closed between flush_all's doc_ids() listing
                # and its flush — the mid-iteration close race
                if doc_id == "b" and "b" in store:
                    store.close_document("b")
                return real_flush(store, doc_id, num_shards=num_shards)

            store.flush = racing_flush
            results = store.flush_all()
            # the surviving document flushed; the cleanly closed one is
            # skipped instead of reported as a batch failure
            assert [r.doc_id for r in results] == ["a"]
            assert "b" not in store

    def test_genuine_failures_still_raise(self):
        with DocumentStore(backend="serial") as store:
            store.open("a", DOC)
            title = _ids_by_name(store.document("a"), "title")[0]
            # two clients renaming the same target conflict under the
            # default on_conflict="error"
            store.submit("a", PUL([Rename(title, "x")], origin="alice"))
            store.submit("a", PUL([Rename(title, "y")], origin="bob"))
            with pytest.raises(ReproError, match="flush failed"):
                store.flush_all()
