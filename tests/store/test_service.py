"""The store's line protocol (``repro store serve``)."""

import io

import pytest

from repro.pul.ops import Rename
from repro.pul.pul import PUL
from repro.pul.serialize import pul_to_xml
from repro.store import DocumentStore, StoreService
from repro.xdm.parser import parse_document

DOC = "<bib><paper><title>T1</title></paper></bib>"


@pytest.fixture
def service():
    service = StoreService(DocumentStore(workers=2, backend="serial"))
    yield service
    if not service.closed:
        service.store.close()


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC, encoding="utf-8")
    return str(path)


@pytest.fixture
def pul_file(tmp_path):
    document = parse_document(DOC)
    title = next(n for n in document.nodes()
                 if n.is_element and n.name == "title")
    pul = PUL([Rename(title.node_id, "headline")], origin="alice")
    path = tmp_path / "rename.pul"
    path.write_text(pul_to_xml(pul), encoding="utf-8")
    return str(path)


class TestCommands:
    def test_full_session(self, service, doc_file, pul_file):
        assert service.handle_line(
            "open d1 {}".format(doc_file)).startswith("ok opened d1")
        assert "depth=1" in service.handle_line(
            "submit d1 {} alice".format(pul_file))
        flushed = service.handle_line("flush d1")
        assert "version=1" in flushed and "relabel=incremental" in flushed
        assert "<headline>T1</headline>" in service.handle_line("text d1")
        assert "d1:v1" in service.handle_line("stats d1")
        assert service.handle_line("docs") == "ok docs d1"
        assert service.handle_line("quit") == "ok bye"
        assert service.closed

    def test_flush_all_and_flush_idle(self, service, doc_file, pul_file):
        service.handle_line("open d1 {}".format(doc_file))
        assert "nothing-pending" in service.handle_line("flush d1")
        service.handle_line("submit d1 {}".format(pul_file))
        assert "batches=1" in service.handle_line("flush-all")

    def test_text_to_file(self, service, doc_file, tmp_path):
        service.handle_line("open d1 {}".format(doc_file))
        out = tmp_path / "out.xml"
        response = service.handle_line("text d1 {}".format(out))
        assert response.startswith("ok wrote")
        assert out.read_text(encoding="utf-8") == DOC

    def test_discard_unwedges_a_rejected_batch(self, service, doc_file,
                                               tmp_path):
        from repro.pul.ops import ReplaceValue
        document = parse_document(DOC)
        victim = next(n.node_id for n in document.nodes() if n.is_text)
        for name, value in (("a.pul", "from-a"), ("b.pul", "from-b")):
            path = tmp_path / name
            path.write_text(pul_to_xml(
                PUL([ReplaceValue(victim, value)])), encoding="utf-8")
        service.handle_line("open d1 {}".format(doc_file))
        service.handle_line("submit d1 {} alice".format(tmp_path / "a.pul"))
        service.handle_line("submit d1 {} bob".format(tmp_path / "b.pul"))
        assert service.handle_line("flush d1").startswith("error")
        assert service.handle_line("flush d1").startswith("error")
        assert service.handle_line("discard d1") == \
            "ok discarded d1 submissions=2"
        assert "nothing-pending" in service.handle_line("flush d1")

    def test_wrote_reports_utf8_bytes(self, service, tmp_path):
        doc = tmp_path / "uni.xml"
        doc.write_text("<a>café</a>", encoding="utf-8")
        service.handle_line("open d1 {}".format(doc))
        out = tmp_path / "out.xml"
        response = service.handle_line("text d1 {}".format(out))
        assert response == "ok wrote {} bytes={}".format(
            out, len(out.read_bytes()))

    def test_inline_text_is_always_one_line(self, service, tmp_path):
        """Newlines in text nodes must not break the one-response-line
        protocol; they travel as character references that parse back to
        the same document."""
        from repro.xdm.parser import parse_document
        from repro.xdm.serializer import serialize
        doc = tmp_path / "multi.xml"
        doc.write_text("<a>line1\nline2</a>", encoding="utf-8")
        service.handle_line("open d1 {}".format(doc))
        response = service.handle_line("text d1")
        assert "\n" not in response
        payload = response.split(" ", 3)[3]
        assert serialize(parse_document(payload)) == \
            serialize(parse_document("<a>line1\nline2</a>"))

    def test_blank_and_comment_lines_ignored(self, service):
        assert service.handle_line("") is None
        assert service.handle_line("   ") is None
        assert service.handle_line("# comment") is None

    def test_errors_are_lines_not_exceptions(self, service, doc_file):
        assert service.handle_line("frobnicate").startswith(
            "error unknown command")
        assert "arguments" in service.handle_line("open d1")
        assert service.handle_line("flush ghost").startswith("error")
        assert service.handle_line(
            "open d1 /no/such/file.xml").startswith("error")
        service.handle_line("open d1 {}".format(doc_file))
        assert service.handle_line(
            "open d1 {}".format(doc_file)).startswith("error")

    def test_stats_without_documents(self, service):
        assert service.handle_line("stats") == "ok stats -"
        assert service.handle_line("docs") == "ok docs -"


class TestServeLoop:
    def test_serve_runs_a_script(self, doc_file, pul_file):
        script = io.StringIO(
            "open d1 {doc}\n"
            "submit d1 {pul} alice\n"
            "flush d1\n"
            "text d1\n"
            "quit\n"
            "open never-reached {doc}\n".format(doc=doc_file,
                                                pul=pul_file))
        out = io.StringIO()
        service = StoreService(DocumentStore(workers=2, backend="serial"))
        assert service.serve(script, out) == 0
        lines = out.getvalue().splitlines()
        assert len(lines) == 5  # nothing after quit
        assert lines[0].startswith("ok opened")
        assert lines[-1] == "ok bye"
        assert service.closed

    def test_serve_closes_on_eof(self, doc_file):
        script = io.StringIO("open d1 {}\n".format(doc_file))
        out = io.StringIO()
        service = StoreService(DocumentStore(workers=2, backend="serial"))
        service.serve(script, out)
        assert service.closed
