"""The store's line protocol (``repro store serve``)."""

import io

import pytest

from repro.pul.ops import Rename
from repro.pul.pul import PUL
from repro.pul.serialize import pul_to_xml
from repro.store import DocumentStore, StoreService
from repro.xdm.parser import parse_document

DOC = "<bib><paper><title>T1</title></paper></bib>"


@pytest.fixture
def service():
    service = StoreService(DocumentStore(workers=2, backend="serial"))
    yield service
    if not service.closed:
        service.store.close()


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC, encoding="utf-8")
    return str(path)


@pytest.fixture
def pul_file(tmp_path):
    document = parse_document(DOC)
    title = next(n for n in document.nodes()
                 if n.is_element and n.name == "title")
    pul = PUL([Rename(title.node_id, "headline")], origin="alice")
    path = tmp_path / "rename.pul"
    path.write_text(pul_to_xml(pul), encoding="utf-8")
    return str(path)


class TestCommands:
    def test_full_session(self, service, doc_file, pul_file):
        assert service.handle_line(
            "open d1 {}".format(doc_file)).startswith("ok opened d1")
        assert "depth=1" in service.handle_line(
            "submit d1 {} alice".format(pul_file))
        flushed = service.handle_line("flush d1")
        assert "version=1" in flushed and "relabel=incremental" in flushed
        assert "<headline>T1</headline>" in service.handle_line("text d1")
        assert "d1:v1" in service.handle_line("stats d1")
        assert service.handle_line("docs") == "ok docs d1"
        assert service.handle_line("quit") == "ok bye"
        assert service.closed

    def test_flush_all_and_flush_idle(self, service, doc_file, pul_file):
        service.handle_line("open d1 {}".format(doc_file))
        assert "nothing-pending" in service.handle_line("flush d1")
        service.handle_line("submit d1 {}".format(pul_file))
        assert "batches=1" in service.handle_line("flush-all")

    def test_text_to_file(self, service, doc_file, tmp_path):
        service.handle_line("open d1 {}".format(doc_file))
        out = tmp_path / "out.xml"
        response = service.handle_line("text d1 {}".format(out))
        assert response.startswith("ok wrote")
        assert out.read_text(encoding="utf-8") == DOC

    def test_discard_unwedges_a_rejected_batch(self, service, doc_file,
                                               tmp_path):
        from repro.pul.ops import ReplaceValue
        document = parse_document(DOC)
        victim = next(n.node_id for n in document.nodes() if n.is_text)
        for name, value in (("a.pul", "from-a"), ("b.pul", "from-b")):
            path = tmp_path / name
            path.write_text(pul_to_xml(
                PUL([ReplaceValue(victim, value)])), encoding="utf-8")
        service.handle_line("open d1 {}".format(doc_file))
        service.handle_line("submit d1 {} alice".format(tmp_path / "a.pul"))
        service.handle_line("submit d1 {} bob".format(tmp_path / "b.pul"))
        assert service.handle_line("flush d1").startswith("error")
        assert service.handle_line("flush d1").startswith("error")
        assert service.handle_line("discard d1") == \
            "ok discarded d1 submissions=2"
        assert "nothing-pending" in service.handle_line("flush d1")

    def test_wrote_reports_utf8_bytes(self, service, tmp_path):
        doc = tmp_path / "uni.xml"
        doc.write_text("<a>café</a>", encoding="utf-8")
        service.handle_line("open d1 {}".format(doc))
        out = tmp_path / "out.xml"
        response = service.handle_line("text d1 {}".format(out))
        assert response == "ok wrote {} bytes={}".format(
            out, len(out.read_bytes()))

    def test_inline_text_is_always_one_line(self, service, tmp_path):
        """Newlines in text nodes must not break the one-response-line
        protocol; they travel as character references that parse back to
        the same document."""
        from repro.xdm.parser import parse_document
        from repro.xdm.serializer import serialize
        doc = tmp_path / "multi.xml"
        doc.write_text("<a>line1\nline2</a>", encoding="utf-8")
        service.handle_line("open d1 {}".format(doc))
        response = service.handle_line("text d1")
        assert "\n" not in response
        payload = response.split(" ", 3)[3]
        assert serialize(parse_document(payload)) == \
            serialize(parse_document("<a>line1\nline2</a>"))

    def test_blank_and_comment_lines_ignored(self, service):
        assert service.handle_line("") is None
        assert service.handle_line("   ") is None
        assert service.handle_line("# comment") is None

    def test_errors_are_lines_not_exceptions(self, service, doc_file):
        assert service.handle_line("frobnicate").startswith(
            "error unknown command")
        assert "arguments" in service.handle_line("open d1")
        assert service.handle_line("flush ghost").startswith("error")
        assert service.handle_line(
            "open d1 /no/such/file.xml").startswith("error")
        service.handle_line("open d1 {}".format(doc_file))
        assert service.handle_line(
            "open d1 {}".format(doc_file)).startswith("error")

    def test_stats_without_documents(self, service):
        assert service.handle_line("stats") == "ok stats -"
        assert service.handle_line("docs") == "ok docs -"


class TestDispatcherBackedCommands:
    """PR 4: the line protocol is an adapter over the same
    StoreDispatcher the network server uses."""

    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "rename.xq"
        path.write_text('rename node /bib/paper/title as "headline"',
                        encoding="utf-8")
        return str(path)

    def test_submit_xquery_compiles_server_side(self, service, doc_file,
                                                query_file):
        service.handle_line("open d1 {}".format(doc_file))
        response = service.handle_line(
            "submit-xquery d1 {} alice".format(query_file))
        assert response == "ok queued d1 ops=1 depth=1"
        service.handle_line("flush d1")
        assert "<headline>T1</headline>" in service.handle_line("text d1")

    def test_stats_json_matches_the_protocol_serializer(self, service,
                                                        doc_file):
        import json as json_module

        service.handle_line("open d1 {}".format(doc_file))
        response = service.handle_line("stats --json d1")
        assert response.startswith("ok stats-json ")
        payload = json_module.loads(response.split(" ", 2)[2])
        assert payload == service.dispatch.stats("d1")
        assert payload["stats"][0]["doc_id"] == "d1"
        # flag position is free, and the flag composes with no doc_id
        assert service.handle_line("stats d1 --json") == response
        all_docs = service.handle_line("stats --json")
        assert json_module.loads(all_docs.split(" ", 2)[2]) == \
            service.dispatch.stats()

    def test_docs_json(self, service, doc_file):
        import json as json_module

        assert service.handle_line("docs --json") == \
            'ok docs-json {"docs":[]}'
        service.handle_line("open d1 {}".format(doc_file))
        response = service.handle_line("docs --json")
        assert json_module.loads(response.split(" ", 2)[2]) == \
            {"docs": ["d1"]}

    def test_json_flag_is_rejected_elsewhere(self, service, doc_file):
        assert service.handle_line("text d1 --json") == \
            "error text does not take --json"

    def test_error_lines_carry_the_stable_code(self, service, doc_file):
        assert service.handle_line("flush ghost").startswith(
            "error repro ")
        service.handle_line("open d1 {}".format(doc_file))
        response = service.handle_line("submit-xquery d1 {}".format(
            doc_file))   # a document is not a query
        assert response.startswith("error query-syntax ")

    def test_wal_poisoned_flush_is_one_greppable_line(self, tmp_path,
                                                      doc_file,
                                                      pul_file):
        """Regression (PR 4): a flush against a poisoned write-ahead
        log must answer ``error wal-poisoned ...`` — one protocol
        line, the stable code first — not surface a traceback."""
        from repro.store import DocumentStore, StoreService

        store = DocumentStore(workers=2, backend="serial",
                              durability="log",
                              wal_dir=str(tmp_path / "wal"))
        service = StoreService(store)
        try:
            service.handle_line("open d1 {}".format(doc_file))
            service.handle_line("submit d1 {} alice".format(pul_file))
            store._durability._writer._broken = True
            response = service.handle_line("flush d1")
            assert response.startswith("error wal-poisoned ")
            assert "\n" not in response
            # the batch was rejected, not half-applied: the queue is
            # intact and the session keeps answering
            assert "pending=1" in service.handle_line("stats d1")
        finally:
            store._durability._writer._broken = False
            service.handle_line("quit")


class TestServeLoop:
    def test_serve_runs_a_script(self, doc_file, pul_file):
        script = io.StringIO(
            "open d1 {doc}\n"
            "submit d1 {pul} alice\n"
            "flush d1\n"
            "text d1\n"
            "quit\n"
            "open never-reached {doc}\n".format(doc=doc_file,
                                                pul=pul_file))
        out = io.StringIO()
        service = StoreService(DocumentStore(workers=2, backend="serial"))
        assert service.serve(script, out) == 0
        lines = out.getvalue().splitlines()
        assert len(lines) == 5  # nothing after quit
        assert lines[0].startswith("ok opened")
        assert lines[-1] == "ok bye"
        assert service.closed

    def test_serve_closes_on_eof(self, doc_file):
        script = io.StringIO("open d1 {}\n".format(doc_file))
        out = io.StringIO()
        service = StoreService(DocumentStore(workers=2, backend="serial"))
        service.serve(script, out)
        assert service.closed
