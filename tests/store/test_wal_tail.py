"""Hypothesis properties of the incremental WAL tail reader.

The replication feed leans on one equivalence: tailing a log file
*incrementally* — any number of reads, over any growth schedule, with
any ``up_to`` horizons — must yield exactly the records a single
:func:`scan_records` pass over the final bytes yields. The suite grows
a file chunk by chunk at hypothesis-chosen split points (including
mid-header and mid-payload cuts), reads after every growth step, and
compares; torn tails and mid-record truncation points must never
surface a record early, error, or advance the position into the tear.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pul.serialize import pul_to_xml
from repro.store.durability import (
    WalTailReader,
    WalWriter,
    encode_record,
    scan_records,
)
from tests.strategies import wire_puls


def _payloads():
    binary = st.binary(max_size=80)
    batch = wire_puls(max_ops=2).map(
        lambda pul: pul_to_xml(pul).encode("utf-8"))
    return st.lists(binary | batch, max_size=5)


def _frame(payloads):
    return b"".join(encode_record(p) for p in payloads)


def _grow(path, data):
    with open(path, "ab") as handle:
        handle.write(data)


@given(payloads=_payloads(), data=st.data())
@settings(max_examples=80)
def test_incremental_tailing_equals_full_scan(tmp_path_factory,
                                              payloads, data):
    """Grow the file at arbitrary byte cuts; the union of all reads is
    the full scan of the final file."""
    path = str(tmp_path_factory.mktemp("tail") / "wal.log")
    frame = _frame(payloads)
    cuts = sorted(data.draw(
        st.lists(st.integers(0, len(frame)), max_size=6), label="cuts"))
    reader = WalTailReader(path)
    collected = []
    written = 0
    for cut in cuts + [len(frame)]:
        if cut > written:
            _grow(path, frame[written:cut])
            written = cut
        collected.extend(payload for __, payload in reader.read())
    expected, valid_bytes, clean = scan_records(frame)
    assert collected == expected
    assert clean and reader.position == valid_bytes
    # offsets reported by a fresh reader address the same records
    fresh = WalTailReader(path)
    for offset, payload in fresh.read():
        record = encode_record(payload)
        assert frame[offset:offset + len(record)] == record


@given(payloads=_payloads().filter(bool), data=st.data())
@settings(max_examples=80)
def test_torn_tail_never_surfaces_and_never_advances(tmp_path_factory,
                                                     payloads, data):
    """Truncate the final file at any byte — mid-header, mid-payload,
    anywhere: the reader yields exactly the valid record prefix and its
    position stays at the prefix end (where the writer's rollback or
    recovery's truncation would resume)."""
    path = str(tmp_path_factory.mktemp("torn") / "wal.log")
    frame = _frame(payloads)
    cut = data.draw(st.integers(0, len(frame)), label="cut")
    _grow(path, frame[:cut])
    reader = WalTailReader(path)
    first = reader.read()
    # reading again without growth yields nothing new
    assert reader.read() == []
    expected, valid_bytes, __ = scan_records(frame[:cut])
    assert [payload for __unused, payload in first] == expected
    assert reader.position == valid_bytes <= cut
    # completing the torn record makes it (and the rest) appear
    _grow(path, frame[cut:])
    rest = [payload for __unused, payload in reader.read()]
    assert expected + rest == payloads
    assert reader.position == len(frame)


@given(payloads=_payloads().filter(bool), data=st.data())
@settings(max_examples=60)
def test_corrupt_byte_stops_the_tail_like_the_scan(tmp_path_factory,
                                                   payloads, data):
    path = str(tmp_path_factory.mktemp("corrupt") / "wal.log")
    frame = bytearray(_frame(payloads))
    position = data.draw(st.integers(0, len(frame) - 1), label="byte")
    frame[position] ^= 1 << data.draw(st.integers(0, 7), label="bit")
    _grow(path, bytes(frame))
    reader = WalTailReader(path)
    got = [payload for __, payload in reader.read()]
    expected, valid_bytes, __ = scan_records(bytes(frame))
    assert got == expected
    assert reader.position == valid_bytes


def test_up_to_horizon_is_respected(tmp_path):
    """The durable-horizon bound: bytes past ``up_to`` stay invisible
    even when a complete record sits there."""
    path = str(tmp_path / "wal.log")
    first, second = encode_record(b"one"), encode_record(b"two")
    _grow(path, first + second)
    reader = WalTailReader(path)
    assert [p for __, p in reader.read(up_to=len(first))] == [b"one"]
    assert reader.read(up_to=len(first)) == []
    # horizons behind the position are a no-op, not a rewind
    assert reader.read(up_to=2) == []
    assert [p for __, p in reader.read(up_to=len(first) + len(second))] \
        == [b"two"]


def test_limit_bounds_each_read(tmp_path):
    path = str(tmp_path / "wal.log")
    payloads = [b"a", b"b", b"c", b"d"]
    _grow(path, _frame(payloads))
    reader = WalTailReader(path)
    assert [p for __, p in reader.read(limit=3)] == [b"a", b"b", b"c"]
    assert [p for __, p in reader.read(limit=3)] == [b"d"]
    assert reader.records_read == 4


def test_missing_file_reads_empty_then_catches_up(tmp_path):
    path = str(tmp_path / "late.log")
    reader = WalTailReader(path)
    assert reader.read() == []
    _grow(path, _frame([b"x"]))
    assert [p for __, p in reader.read()] == [b"x"]


def test_tailing_a_live_writer_up_to_synced_size(tmp_path):
    """The feed's exact usage: follow a WalWriter through appends and
    group-commit syncs, only ever reading to ``synced_size``."""
    path = str(tmp_path / "live.log")
    with WalWriter(path, fsync=False) as writer:
        reader = WalTailReader(path)
        writer.append(b"first")
        assert [p for __, p in reader.read(up_to=writer.synced_size)] \
            == [b"first"]
        writer.append(b"second", sync=False)
        # unsynced: invisible behind the horizon
        assert reader.read(up_to=writer.synced_size) == []
        writer.sync()
        assert [p for __, p in reader.read(up_to=writer.synced_size)] \
            == [b"second"]
    assert os.path.getsize(path) == reader.position
