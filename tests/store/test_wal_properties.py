"""Hypothesis properties of the WAL record framing.

The framing layer's whole job is to make three statements true for any
payload sequence, so they are checked as properties rather than
examples: records round-trip exactly, truncating a log at *any* byte
recovers a valid record prefix (the torn-write tolerance recovery leans
on), and a single flipped bit never yields a corrupted payload — the
scan stops at the damaged record. Payloads mix arbitrary bytes with
real coalesced-batch XML (the ``wire_puls`` strategy), since PUL
exchange documents are what the store actually logs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pul.serialize import pul_to_xml
from repro.store.durability import encode_record, scan_records
from tests.strategies import wire_puls


def _payloads():
    binary = st.binary(max_size=120)
    batch = wire_puls(max_ops=3).map(
        lambda pul: pul_to_xml(pul).encode("utf-8"))
    return st.lists(binary | batch, max_size=4)


def _frame(payloads):
    return b"".join(encode_record(p) for p in payloads)


@given(payloads=_payloads())
def test_records_round_trip(payloads):
    decoded, valid_bytes, clean = scan_records(_frame(payloads))
    assert decoded == payloads
    assert clean
    assert valid_bytes == len(_frame(payloads))


@given(payloads=_payloads(), data=st.data())
@settings(max_examples=60)
def test_torn_write_recovers_a_valid_prefix(payloads, data):
    frame = _frame(payloads)
    cut = data.draw(st.integers(0, len(frame)), label="cut")
    decoded, valid_bytes, clean = scan_records(frame[:cut])
    assert decoded == payloads[:len(decoded)]
    assert valid_bytes <= cut
    # the recovered prefix is itself a clean log
    redecoded, __, reclean = scan_records(frame[:valid_bytes])
    assert redecoded == decoded
    assert reclean
    if cut == len(frame):
        assert clean and decoded == payloads


@given(payloads=_payloads().filter(bool), data=st.data())
@settings(max_examples=60)
def test_single_bit_corruption_never_surfaces(payloads, data):
    frame = bytearray(_frame(payloads))
    position = data.draw(st.integers(0, len(frame) - 1), label="byte")
    bit = data.draw(st.integers(0, 7), label="bit")
    frame[position] ^= 1 << bit
    decoded, valid_bytes, clean = scan_records(bytes(frame))
    # find which record the damaged byte belongs to
    offset = 0
    damaged_index = len(payloads)
    for index, payload in enumerate(payloads):
        end = offset + len(encode_record(payload))
        if position < end:
            damaged_index = index
            break
        offset = end
    assert not clean
    assert decoded == payloads[:damaged_index]
    assert valid_bytes == offset


def test_writer_appends_scan_back(tmp_path):
    from repro.store.durability import WalWriter, scan_wal

    path = str(tmp_path / "wal.log")
    payloads = [b"alpha", b"", b"\x00" * 64, "poinée".encode("utf-8")]
    with WalWriter(path, fsync=False) as writer:
        for payload in payloads:
            writer.append(payload, sync=False)
        writer.sync()
    decoded, __, clean = scan_wal(path)
    assert decoded == payloads
    assert clean


def test_scan_of_missing_file_is_empty(tmp_path):
    from repro.store.durability import scan_wal

    decoded, valid_bytes, clean = scan_wal(str(tmp_path / "absent.log"))
    assert decoded == [] and valid_bytes == 0 and clean


def test_atomic_single_record_file(tmp_path):
    from repro.store.durability import (
        read_single_record,
        write_file_atomically,
    )

    path = str(tmp_path / "snap.snap")
    write_file_atomically(path, b"state")
    assert read_single_record(path) == b"state"
    # a second write replaces, never appends
    write_file_atomically(path, b"state2")
    assert read_single_record(path) == b"state2"
    # a torn file reads as invalid, not as a partial payload
    with open(path, "r+b") as handle:
        handle.truncate(5)
    assert read_single_record(path) is None
