"""Unit tests for the resident multi-document store."""

import threading

import pytest

from repro.distributed.messages import PULMessage
from repro.distributed.network import SimulatedNetwork
from repro.errors import MergeError, ReproError
from repro.pul.ops import (
    Delete,
    InsertAttributes,
    InsertIntoAsLast,
    Rename,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.serialize import pul_to_xml
from repro.store import DocumentStore
from repro.xdm.node import Node

DOC = ("<bib><paper><title>T1</title><authors><author>A</author>"
       "</authors></paper><paper><title>T2</title></paper>"
       "<note>n</note></bib>")


@pytest.fixture
def store():
    with DocumentStore(workers=2, backend="serial") as store:
        yield store


def _ids_by_name(document, name):
    return [n.node_id for n in document.nodes()
            if n.is_element and n.name == name]


def _text_id(document, value):
    return next(n.node_id for n in document.nodes()
                if n.is_text and n.value == value)


class TestLifecycle:
    def test_open_parses_and_labels(self, store):
        entry = store.open("d1", DOC)
        assert entry.version == 0
        assert len(entry.document) == len(entry.labeling)
        assert "d1" in store
        assert store.doc_ids() == ["d1"]

    def test_open_accepts_a_document_object(self, store):
        from repro.xdm.parser import parse_document
        store.open("d1", parse_document(DOC))
        assert store.text("d1") == DOC

    def test_duplicate_open_rejected(self, store):
        store.open("d1", DOC)
        with pytest.raises(ReproError):
            store.open("d1", DOC)

    def test_unknown_document_rejected(self, store):
        with pytest.raises(ReproError):
            store.submit("ghost", PUL([]))
        with pytest.raises(ReproError):
            store.flush("ghost")
        with pytest.raises(ReproError):
            store.text("ghost")

    def test_close_document_evicts(self, store):
        store.open("d1", DOC)
        store.close_document("d1")
        assert "d1" not in store

    def test_bad_configuration_rejected(self):
        with pytest.raises(ReproError):
            DocumentStore(on_conflict="overwrite")
        with pytest.raises(ReproError):
            DocumentStore(max_code_length=0)


class TestBatches:
    def test_flush_nothing_pending(self, store):
        store.open("d1", DOC)
        assert store.flush("d1") is None
        assert store.version("d1") == 0

    def test_single_client_batch(self, store):
        store.open("d1", DOC)
        title = _ids_by_name(store.document("d1"), "title")[0]
        store.submit("d1", PUL([Rename(title, "headline")]),
                     client="alice")
        result = store.flush("d1")
        assert result.version == 1
        assert result.relabel == "incremental"
        assert "<headline>T1</headline>" in store.text("d1")

    def test_documents_are_isolated(self, store):
        store.open("d1", DOC)
        store.open("d2", DOC)
        title = _ids_by_name(store.document("d1"), "title")[0]
        store.submit("d1", PUL([Rename(title, "headline")]))
        store.flush("d1")
        assert store.version("d1") == 1
        assert store.version("d2") == 0
        assert store.text("d2") == DOC

    def test_same_client_chain_is_sequential(self, store):
        """A client's second PUL may target nodes its first inserted."""
        store.open("d1", DOC)
        root = store.document("d1").root.node_id
        tree = Node.element("shelf", node_id=500)
        first = PUL([InsertIntoAsLast(root, [tree])])
        second = PUL([InsertIntoAsLast(500, [Node.text("books")])])
        store.submit("d1", first, client="alice")
        store.submit("d1", second, client="alice")
        result = store.flush("d1")
        assert result.clients == 1
        assert "<shelf>books</shelf>" in store.text("d1")

    def test_multi_client_union(self, store):
        store.open("d1", DOC)
        titles = _ids_by_name(store.document("d1"), "title")
        store.submit("d1", PUL([Rename(titles[0], "headline")]),
                     client="alice")
        store.submit("d1", PUL([Rename(titles[1], "caption")]),
                     client="bob")
        result = store.flush("d1")
        assert result.clients == 2
        text = store.text("d1")
        assert "<headline>" in text and "<caption>" in text

    def test_incompatible_clients_fail_and_restore_pending(self, store):
        store.open("d1", DOC)
        note = _text_id(store.document("d1"), "n")
        store.submit("d1", PUL([ReplaceValue(note, "from-alice")]),
                     client="alice")
        store.submit("d1", PUL([ReplaceValue(note, "from-bob")]),
                     client="bob")
        with pytest.raises(MergeError):
            store.flush("d1")
        # no partial state published, queue intact for reconciliation
        assert store.text("d1") == DOC
        assert store.version("d1") == 0
        assert store.stats("d1")["pending"] == 2

    def test_failed_apply_rolls_back_labeling(self, store):
        """A batch that dies mid-apply (XQUF duplicate-attribute error)
        must leave the labeling consistent with the unchanged document
        — the streaming evaluator mutates it in place."""
        from repro.errors import NotApplicableError
        store.open("d1", DOC)
        paper = _ids_by_name(store.document("d1"), "paper")[0]
        store.submit("d1", PUL([InsertAttributes(
            paper, [Node.attribute("dup", "1")])]), client="alice")
        store.submit("d1", PUL([InsertAttributes(
            paper, [Node.attribute("dup", "2")])]), client="bob")
        with pytest.raises(NotApplicableError):
            store.flush("d1")
        assert store.text("d1") == DOC
        assert store.version("d1") == 0
        labeling = store.labeling("d1")
        document = store.document("d1")
        assert len(labeling) == len(document)
        assert all(node_id in document
                   for node_id in labeling.as_mapping())
        # the session continues cleanly once the bad batch is withdrawn
        assert store.discard_pending("d1") == 2
        title = _ids_by_name(document, "title")[0]
        store.submit("d1", PUL([Rename(title, "headline")]))
        assert store.flush("d1").version == 1
        assert "<headline>" in store.text("d1")

    def test_reconcile_mode_resolves_conflicts(self):
        with DocumentStore(backend="serial",
                           on_conflict="reconcile") as store:
            store.open("d1", DOC)
            note = _text_id(store.document("d1"), "n")
            store.submit("d1", PUL([ReplaceValue(note, "from-alice")],
                                   origin="alice"))
            store.submit("d1", PUL([ReplaceValue(note, "from-bob")],
                                   origin="bob"))
            result = store.flush("d1")
            assert result.version == 1
            assert store.text("d1") != DOC

    def test_flush_all(self, store):
        store.open("d1", DOC)
        store.open("d2", DOC)
        for doc_id in ("d1", "d2"):
            title = _ids_by_name(store.document(doc_id), "title")[0]
            store.submit(doc_id, PUL([Rename(title, "headline")]))
        results = store.flush_all()
        assert sorted(r.doc_id for r in results) == ["d1", "d2"]
        assert all(r.version == 1 for r in results)

    def test_flush_all_continues_past_a_failing_document(self, store):
        """One document's bad batch must not starve the others."""
        store.open("bad", DOC)
        store.open("good", DOC)
        note = _text_id(store.document("bad"), "n")
        store.submit("bad", PUL([ReplaceValue(note, "a")]),
                     client="alice")
        store.submit("bad", PUL([ReplaceValue(note, "b")]), client="bob")
        title = _ids_by_name(store.document("good"), "title")[0]
        store.submit("good", PUL([Rename(title, "headline")]))
        with pytest.raises(ReproError, match="'bad'"):
            store.flush_all()
        # the healthy document was flushed, the bad one kept its queue
        assert store.version("good") == 1
        assert "<headline>" in store.text("good")
        assert store.stats("bad")["pending"] == 2
        assert store.version("bad") == 0


class TestIdentifierDiscipline:
    def test_removed_identifiers_stay_burned(self, store):
        store.open("d1", DOC)
        document = store.document("d1")
        burned = max(document.node_ids())
        victim = document.get(burned)
        while victim.parent is not None and \
                victim.parent.parent is not None:
            victim = victim.parent
        store.submit("d1", PUL([Delete(victim.node_id)]))
        store.flush("d1")
        removed = {victim.node_id, burned}
        root = store.document("d1").root.node_id
        store.submit("d1", PUL([InsertIntoAsLast(
            root, [Node.element("fresh")])]))
        store.flush("d1")
        fresh = [n.node_id for n in store.document("d1").nodes()
                 if n.is_element and n.name == "fresh"]
        assert fresh and fresh[0] not in removed


class TestHeadroomFallback:
    def test_hot_spot_triggers_full_relabel(self):
        with DocumentStore(backend="serial", max_code_length=10) as store:
            store.open("d1", "<list><slot/></list>")
            relabels = []
            for round_index in range(12):
                slot = _ids_by_name(store.document("d1"), "slot")[0]
                store.submit("d1", PUL([InsertIntoAsLast(
                    slot, [Node.element("e{}".format(round_index))])]))
                relabels.append(store.flush("d1").relabel)
            stats = store.stats("d1")
            assert "full" in relabels
            assert stats["full_relabels"] >= 1
            assert stats["incremental_relabels"] >= 1
            # a full relabel rebalanced the codes below the budget
            assert store.labeling("d1").max_code_length <= 10
            assert len(store.labeling("d1")) == len(store.document("d1"))


class TestMessageRouting:
    def test_submit_message_routes_by_doc_id(self, store):
        store.open("d1", DOC)
        title = _ids_by_name(store.document("d1"), "title")[0]
        pul = PUL([Rename(title, "headline")])
        message = PULMessage(pul_to_xml(pul), origin="alice",
                             doc_id="d1")
        assert "doc='d1'" in repr(message)
        store.submit_message(message)
        store.flush("d1")
        assert "<headline>" in store.text("d1")

    def test_message_without_doc_id_rejected(self, store):
        store.open("d1", DOC)
        message = PULMessage("<pul/>", origin="alice")
        with pytest.raises(ReproError):
            store.submit_message(message)

    def test_dispatch_shards_stamps_doc_id(self, store):
        store.open("d1", DOC)
        document = store.document("d1")
        titles = _ids_by_name(document, "title")
        pul = PUL([Rename(titles[0], "headline"),
                   Rename(titles[1], "caption")], origin="alice")
        network = SimulatedNetwork()
        envelopes = store.dispatch_shards("d1", pul, 2, network=network)
        assert len(envelopes) >= 1
        assert all(e.doc_id == "d1" for e in envelopes)
        assert all("doc='d1'" in repr(e) for e in envelopes)
        assert [r.sender for r in network.log] == \
            ["store/d1"] * len(envelopes)

    def test_dispatch_does_not_mutate_the_pul(self, store):
        store.open("d1", DOC)
        title = _ids_by_name(store.document("d1"), "title")[0]
        pul = PUL([Rename(title, "headline")])
        store.dispatch_shards("d1", pul, 2)
        assert pul.labels == {}


class TestConcurrency:
    def test_concurrent_submissions_all_land(self, store):
        store.open("d1", DOC)
        root = store.document("d1").root.node_id
        threads = []

        def client(name):
            for index in range(5):
                tree = Node.element("{}x{}".format(name, index))
                store.submit("d1", PUL([InsertIntoAsLast(root, [tree])]),
                             client=name)

        for name in ("a", "b", "c", "d"):
            thread = threading.Thread(target=client, args=(name,))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats("d1")["pending"] == 20
        result = store.flush("d1")
        assert result.version == 1
        assert result.clients == 4
        root_node = store.document("d1").root
        assert sum(1 for child in root_node.children
                   if child.is_element and "x" in child.name) == 20

    def test_concurrent_flushes_serialize(self, store):
        """Two flushes of the same document never interleave: the second
        blocks until the first publishes."""
        store.open("d1", DOC)
        root = store.document("d1").root.node_id
        inner = store._execute_batch
        started = threading.Event()
        release = threading.Event()

        def slow_execute(entry, pending, num_shards):
            started.set()
            assert release.wait(5)
            return inner(entry, pending, num_shards)

        store._execute_batch = slow_execute
        store.submit("d1", PUL([InsertIntoAsLast(
            root, [Node.element("first")])]))
        results = []
        one = threading.Thread(
            target=lambda: results.append(store.flush("d1")))
        one.start()
        assert started.wait(5)
        store.submit("d1", PUL([InsertIntoAsLast(
            root, [Node.element("second")])]))
        store._execute_batch = inner  # second flush runs at full speed
        two = threading.Thread(
            target=lambda: results.append(store.flush("d1")))
        two.start()
        two.join(timeout=0.2)
        assert two.is_alive()        # blocked behind the first flush
        release.set()
        one.join(5)
        two.join(5)
        assert sorted(r.version for r in results) == [1, 2]
        text = store.text("d1")
        assert "<first/>" in text and "<second/>" in text
