"""Differential fuzz harness for the stateful store.

Every stateful path is checked against a stateless sequential oracle:

* **reduction**: pulgen PULs reduced against the labels they carry (the
  executor's document-free mode) must equal the reduction against a live
  :class:`~repro.reasoning.oracle.DocumentOracle`;
* **store**: multi-round concurrent-client sessions through the resident
  :class:`DocumentStore` (incremental relabeling) must stay byte-identical
  to the :class:`StatelessBaseline` (parse → reduce → apply → full
  relabel) after every flush — including sessions whose headroom budget
  forces full-relabel fallbacks mid-stream, and across every pipeline
  shard count.
"""

import pytest

from repro.labeling import ContainmentLabeling
from repro.reasoning import DocumentOracle
from repro.reduction import reduce_deterministic
from repro.store import DocumentStore, StatelessBaseline
from repro.workloads import generate_client_batches, generate_pul, \
    generate_reducible_pul, generate_xmark
from repro.xdm.serializer import serialize

SEEDS = (0, 1, 2, 3, 4)


@pytest.fixture(scope="module")
def document():
    return generate_xmark(scale=0.02, seed=7)


@pytest.fixture(scope="module")
def labeling(document):
    return ContainmentLabeling().build(document)


class TestReductionOracleDifferential:
    """Label-carried structure vs live-document structure."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_label_and_document_oracles_agree(self, document, labeling,
                                              seed):
        pul = generate_pul(document, 40, seed=seed, labeling=labeling)
        by_labels = reduce_deterministic(pul)
        by_document = reduce_deterministic(pul,
                                           structure=DocumentOracle(
                                               document))
        assert by_labels == by_document

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agreement_on_reducible_workloads(self, document, labeling,
                                              seed):
        pul = generate_reducible_pul(document, 40, hit_ratio=0.3,
                                     seed=seed, labeling=labeling)
        by_labels = reduce_deterministic(pul)
        by_document = reduce_deterministic(pul,
                                           structure=DocumentOracle(
                                               document))
        assert by_labels == by_document
        assert len(by_labels) < len(pul)  # the planted pairs collapsed


def _run_session(document, seed, clients=3, rounds=4, ops_per_round=12,
                 max_code_length=64, num_shards=None, min_depth=0):
    """Drive one store-vs-baseline session; asserts byte identity after
    every flush and returns the store's final stats."""
    text = serialize(document)
    batches, expected = generate_client_batches(
        document, clients=clients, rounds=rounds,
        ops_per_round=ops_per_round, seed=seed, min_depth=min_depth)
    baseline = StatelessBaseline(measure_parse=False)
    with DocumentStore(workers=2, backend="serial",
                       max_code_length=max_code_length) as store:
        store.open("d", text)
        baseline.open("d", text)
        for submissions in batches:
            for client, pul in submissions:
                store.submit("d", pul.copy(), client=client)
                baseline.submit("d", pul.copy(), client=client)
            store.flush("d", num_shards=num_shards)
            baseline.flush("d")
            assert store.text("d") == baseline.text("d")
        assert store.text("d") == serialize(expected)
        return store.stats("d")


class TestStoreDifferential:
    """Resident-incremental relabel vs stateless full relabel."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sessions_byte_identical(self, document, seed):
        stats = _run_session(document, seed)
        assert stats["version"] == 4
        assert stats["full_relabels"] == 0  # headroom never exhausted

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_sessions_with_forced_full_relabels(self, document, seed):
        """A tight headroom budget forces the fallback mid-session; the
        relabeled store must keep producing identical bytes."""
        stats = _run_session(document, seed, rounds=6,
                             max_code_length=14)
        assert stats["full_relabels"] >= 1

    @pytest.mark.parametrize("num_shards", (1, 3, 8))
    def test_shard_count_invariance(self, document, num_shards):
        _run_session(document, seed=9, num_shards=num_shards)

    def test_record_local_sessions(self, document):
        """The sharding-friendly min_depth workload shape."""
        stats = _run_session(document, seed=13, clients=4, rounds=3,
                             ops_per_round=20, min_depth=3)
        assert stats["batches"] == 3

    def test_single_client_session(self, document):
        _run_session(document, seed=17, clients=1)

    def test_sessions_survive_a_rejected_batch(self, document):
        """Store and oracle stay comparable across a failed flush: both
        reject the same conflicting batch, restore their queues, and —
        once the batch is withdrawn — keep producing identical bytes."""
        from repro.errors import MergeError
        from repro.pul.ops import ReplaceValue
        from repro.pul.pul import PUL

        text = serialize(document)
        victim = next(n.node_id for n in document.nodes() if n.is_text)
        baseline = StatelessBaseline(measure_parse=False)
        with DocumentStore(workers=2, backend="serial") as store:
            store.open("d", text)
            baseline.open("d", text)
            for executor in (store, baseline):
                executor.submit("d", PUL([ReplaceValue(victim, "a")]),
                                client="alice")
                executor.submit("d", PUL([ReplaceValue(victim, "b")]),
                                client="bob")
                with pytest.raises(MergeError):
                    executor.flush("d")
                assert executor.text("d") == text
                assert executor.discard_pending("d") == 2
            batches, __ = generate_client_batches(
                document, clients=2, rounds=2, ops_per_round=8, seed=29)
            for submissions in batches:
                for client, pul in submissions:
                    store.submit("d", pul.copy(), client=client)
                    baseline.submit("d", pul.copy(), client=client)
                store.flush("d")
                baseline.flush("d")
                assert store.text("d") == baseline.text("d")

    def test_many_small_rounds(self):
        """A deep narrow document hammered on one hot spot — the shape
        that degrades code headroom fastest."""
        small = generate_xmark(scale=0.01, seed=3)
        stats = _run_session(small, seed=21, clients=2, rounds=8,
                             ops_per_round=6, max_code_length=16)
        assert stats["version"] == 8
