"""The canonical-form equivalence check: soundness against the exact
obtainable-set oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pul.equivalence import equivalent, equivalent_by_canonical
from repro.pul.ops import InsertAfter, InsertIntoAsLast, Rename
from repro.pul.pul import PUL
from repro.pul.semantics import ObtainableLimitExceeded
from repro.reasoning import DocumentOracle
from repro.xdm.parser import parse_forest

from tests.strategies import applicable_puls, documents


class TestCanonicalEquivalence:
    def test_shuffled_pul_is_canonically_equivalent(self, small_doc):
        oracle = DocumentOracle(small_doc)
        ops = [Rename(2, "x"),
               InsertAfter(4, parse_forest("<p/>")),
               InsertIntoAsLast(0, parse_forest("<q/>"))]
        assert equivalent_by_canonical(PUL(ops), PUL(ops[::-1]), oracle)

    def test_collapsible_variants_detected(self, small_doc):
        oracle = DocumentOracle(small_doc)
        split = PUL([InsertAfter(4, parse_forest("<p/>")),
                     InsertAfter(4, parse_forest("<q/>"))])
        merged = PUL([InsertAfter(4, parse_forest("<p/><q/>"))])
        assert equivalent_by_canonical(split, merged, oracle)

    def test_different_effects_not_equal(self, small_doc):
        oracle = DocumentOracle(small_doc)
        assert not equivalent_by_canonical(
            PUL([Rename(2, "x")]), PUL([Rename(2, "y")]), oracle)

    def test_incomplete_for_cross_shape_equivalence(self, figure1):
        """Example 4's equivalent pair uses different primitives; the
        syntactic check conservatively says False."""
        from repro.pul.ops import ReplaceChildren, ReplaceValue
        oracle = DocumentOracle(figure1)
        pul1 = PUL([ReplaceValue(20, "R")])
        pul2 = PUL([ReplaceChildren(19, "R")])
        assert equivalent(pul1, pul2, figure1)
        assert not equivalent_by_canonical(pul1, pul2, oracle)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_soundness_against_exact_oracle(data):
    """Canonically-equal PULs always have equal obtainable sets."""
    document = data.draw(documents(max_depth=2, max_children=2))
    oracle = DocumentOracle(document)
    pul1 = data.draw(applicable_puls(document, max_ops=4))
    pul2 = data.draw(applicable_puls(document, max_ops=4))
    if not equivalent_by_canonical(pul1, pul2, oracle):
        return
    try:
        assert equivalent(pul1, pul2, document, limit=3000)
    except ObtainableLimitExceeded:
        pass
