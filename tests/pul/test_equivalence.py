"""Tests for PUL equivalence and substitutability (Definition 6)."""

from repro.pul.equivalence import (
    equivalent,
    obtainable_strings,
    sequential_obtainable_strings,
    substitutable,
)
from repro.pul.ops import (
    InsertAfter,
    InsertIntoAsLast,
    ReplaceChildren,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.xdm.parser import parse_forest


class TestExample4:
    """The paper's Example 4, on the Figure 1 document."""

    def test_equivalence(self, figure1):
        # ins→ after the last author (25) ~ ins↘ into authors (21);
        # repV on the title text (20) ~ repC on the title element (19)
        pul1 = PUL([InsertAfter(25, parse_forest(
                        "<author>M.Mesiti</author>")),
                    ReplaceValue(20, "Report on ...")])
        pul2 = PUL([InsertIntoAsLast(21, parse_forest(
                        "<author>M.Mesiti</author>")),
                    ReplaceChildren(19, "Report on ...")])
        assert equivalent(pul1, pul2, figure1)

    def test_substitutability(self, figure1):
        pul1 = PUL([
            InsertIntoAsLast(7, parse_forest("<initP>132</initP>")),
            InsertIntoAsLast(7, parse_forest("<lastP>134</lastP>")),
        ])
        pul2 = PUL([
            InsertIntoAsLast(
                7, parse_forest("<initP>132</initP><lastP>134</lastP>")),
        ])
        assert substitutable(pul2, pul1, figure1)
        assert not substitutable(pul1, pul2, figure1)
        assert not equivalent(pul1, pul2, figure1)


class TestRelationsAreOrdersModuloEquivalence:
    def test_equivalence_is_reflexive(self, small_doc):
        pul = PUL([ReplaceValue(3, "x")])
        assert equivalent(pul, pul, small_doc)

    def test_substitutability_is_reflexive(self, small_doc):
        pul = PUL([ReplaceValue(3, "x")])
        assert substitutable(pul, pul, small_doc)

    def test_empty_puls_equivalent(self, small_doc):
        assert equivalent(PUL(), PUL(), small_doc)

    def test_identity_matters_with_ids(self, small_doc):
        # replacing a text node with an equal-valued new one is value-equal
        # but not identity-equal
        from repro.pul.ops import ReplaceNode
        from repro.xdm.node import Node
        pul1 = PUL([ReplaceValue(3, "hi")])   # keeps node 3
        pul2 = PUL([ReplaceNode(3, [Node.text("hi")])])  # fresh node
        assert equivalent(pul1, pul2, small_doc)
        assert not equivalent(pul1, pul2, small_doc, with_ids=True)


class TestSequential:
    def test_sequence_composition(self, small_doc):
        first = PUL([ReplaceValue(3, "one")])
        second = PUL([ReplaceValue(3, "two")])
        keys = sequential_obtainable_strings(small_doc, [first, second])
        only = obtainable_strings(small_doc, second)
        assert keys == only

    def test_empty_sequence(self, small_doc):
        keys = sequential_obtainable_strings(small_doc, [])
        assert len(keys) == 1
