"""Unit tests for the Table 2 update primitives."""

import pytest

from repro.errors import InvalidOperationError
from repro.pul.ops import (
    CHILD_INSERTS,
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    OPERATION_TYPES,
    OpClass,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
    compatible,
    same_insert_kind,
)
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest


class TestStaticConditions:
    def test_insert_requires_detached_trees(self, small_doc):
        attached = small_doc.get(2)
        with pytest.raises(InvalidOperationError):
            InsertBefore(3, [attached])

    def test_insert_rejects_string_parameter(self):
        with pytest.raises(InvalidOperationError):
            InsertBefore(3, ["<a/>"])

    def test_sibling_insert_rejects_attribute_roots(self):
        with pytest.raises(InvalidOperationError):
            InsertAfter(3, [Node.attribute("k", "v")])

    def test_insert_attributes_requires_attribute_roots(self):
        with pytest.raises(InvalidOperationError):
            InsertAttributes(3, [Node.element("a")])
        InsertAttributes(3, [Node.attribute("k", "v")])  # fine

    def test_replace_node_uniform_roots(self):
        mixed = [Node.attribute("k", "v"), Node.element("a")]
        with pytest.raises(InvalidOperationError):
            ReplaceNode(3, mixed)
        ReplaceNode(3, [])  # empty allowed

    def test_empty_insert_rejected(self):
        with pytest.raises(InvalidOperationError):
            InsertBefore(3, [])

    def test_strict_repc_single_text(self):
        ReplaceChildren(3, "text")
        ReplaceChildren(3, [])
        with pytest.raises(InvalidOperationError):
            ReplaceChildren(3, parse_forest("<a/>"))
        ReplaceChildren(3, parse_forest("<a/>"), strict=False)

    def test_rename_requires_name(self):
        with pytest.raises(InvalidOperationError):
            Rename(3, "")

    def test_replace_value_requires_string(self):
        with pytest.raises(InvalidOperationError):
            ReplaceValue(3, 42)

    def test_target_must_be_int(self):
        with pytest.raises(InvalidOperationError):
            Delete("five")


class TestApplicability:
    def test_unknown_target(self, small_doc):
        op = Delete(999)
        assert not op.is_applicable(small_doc)
        assert "not in document" in op.applicability_errors(small_doc)[0]

    def test_sibling_insert_needs_parent(self, small_doc):
        op = InsertBefore(0, parse_forest("<x/>"))
        assert not op.is_applicable(small_doc)

    def test_sibling_insert_rejects_attribute_target(self, small_doc):
        op = InsertAfter(1, parse_forest("<x/>"))  # @x
        assert not op.is_applicable(small_doc)

    def test_child_insert_needs_element(self, small_doc):
        op = InsertIntoAsLast(3, parse_forest("<x/>"))  # text node
        assert not op.is_applicable(small_doc)

    def test_replace_node_kind_match(self, small_doc):
        elem_with_attr = ReplaceNode(2, [Node.attribute("k", "v")])
        assert not elem_with_attr.is_applicable(small_doc)
        attr_with_attr = ReplaceNode(1, [Node.attribute("k", "v")])
        assert attr_with_attr.is_applicable(small_doc)

    def test_replace_node_needs_parent(self, small_doc):
        assert not ReplaceNode(0, []).is_applicable(small_doc)

    def test_delete_root_is_allowed(self, small_doc):
        assert Delete(0).is_applicable(small_doc)

    def test_replace_value_on_element_rejected(self, small_doc):
        assert not ReplaceValue(0, "v").is_applicable(small_doc)
        assert ReplaceValue(3, "v").is_applicable(small_doc)
        assert ReplaceValue(1, "v").is_applicable(small_doc)

    def test_rename_on_text_rejected(self, small_doc):
        assert not Rename(3, "n").is_applicable(small_doc)
        assert Rename(1, "n").is_applicable(small_doc)


class TestClassesAndStages:
    def test_op_classes(self):
        assert InsertInto.op_class is OpClass.INSERT
        assert Delete.op_class is OpClass.DELETE
        for cls in (ReplaceNode, ReplaceValue, ReplaceChildren, Rename):
            assert cls.op_class is OpClass.REPLACE

    def test_stages_follow_the_semantics(self):
        assert InsertInto.stage == 1
        assert InsertAttributes.stage == 1
        assert ReplaceValue.stage == 1
        assert Rename.stage == 1
        assert InsertBefore.stage == 2
        assert InsertAfter.stage == 2
        assert InsertIntoAsFirst.stage == 2
        assert InsertIntoAsLast.stage == 2
        assert ReplaceNode.stage == 3
        assert ReplaceChildren.stage == 4
        assert Delete.stage == 5

    def test_registry_is_complete(self):
        assert len(OPERATION_TYPES) == 11

    def test_symbols(self):
        assert InsertBefore(1, parse_forest("<a/>")).describe().startswith(
            "ins←")


class TestCompatibility:
    def test_example2_of_the_paper(self):
        op1 = Rename(1, "dblp")
        op2 = Rename(1, "myDblp")
        op3 = ReplaceChildren(1, "nopapers")
        assert compatible(op1, op3)
        assert compatible(op2, op3)
        assert not compatible(op1, op2)

    def test_different_targets_always_compatible(self):
        assert compatible(Rename(1, "a"), Rename(2, "b"))

    def test_inserts_always_compatible(self):
        a = InsertIntoAsLast(1, parse_forest("<x/>"))
        b = InsertIntoAsLast(1, parse_forest("<y/>"))
        assert compatible(a, b)
        assert same_insert_kind(a, b)

    def test_deletes_always_compatible(self):
        assert compatible(Delete(1), Delete(1))


class TestIdentity:
    def test_structural_equality(self):
        a = InsertAfter(3, parse_forest("<x>1</x>"))
        b = InsertAfter(3, parse_forest("<x>1</x>"))
        c = InsertAfter(3, parse_forest("<x>2</x>"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_copy_is_deep(self):
        a = InsertAfter(3, parse_forest("<x>1</x>"))
        b = a.copy()
        assert a == b
        b.trees[0].name = "changed"
        assert a != b

    def test_with_trees(self):
        a = InsertAfter(3, parse_forest("<x/>"))
        merged = a.with_trees(list(a.trees) + parse_forest("<y/>"))
        assert isinstance(merged, InsertAfter)
        assert len(merged.trees) == 2

    def test_sort_key_deterministic(self):
        ops = [Delete(5), Rename(2, "a"), Delete(2)]
        keys = [op.sort_key() for op in ops]
        assert sorted(keys) == sorted(keys, key=lambda k: k)

    def test_child_inserts_tuple(self):
        assert InsertInto in CHILD_INSERTS
