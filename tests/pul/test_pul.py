"""Unit tests for the PUL container (Definitions 3-5)."""

import pytest

from repro.errors import (
    IncompatibleOperationsError,
    MergeError,
    NotApplicableError,
)
from repro.pul.ops import (
    Delete,
    InsertAfter,
    Rename,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL, merge
from repro.xdm.parser import parse_forest


class TestContainer:
    def test_iteration_and_len(self):
        pul = PUL([Delete(1), Rename(2, "x")])
        assert len(pul) == 2
        assert [op.op_name for op in pul] == ["delete", "rename"]

    def test_only_operations_allowed(self):
        with pytest.raises(TypeError):
            PUL(["not an op"])

    def test_targets(self):
        pul = PUL([Delete(1), Rename(2, "x"), Delete(1)])
        assert pul.targets() == {1, 2}

    def test_equality_is_order_insensitive(self):
        a = PUL([Delete(1), Rename(2, "x")])
        b = PUL([Rename(2, "x"), Delete(1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_is_multiset(self):
        a = PUL([Delete(1), Delete(1)])
        b = PUL([Delete(1)])
        assert a != b

    def test_copy_deep(self):
        a = PUL([InsertAfter(1, parse_forest("<x/>"))], origin="p")
        b = a.copy()
        assert a == b
        assert b.origin == "p"
        b[0].trees[0].name = "mutated"
        assert a != b


class TestCompatibility:
    def test_incompatible_renames(self):
        pul = PUL([Rename(1, "a"), Rename(1, "b")])
        with pytest.raises(IncompatibleOperationsError):
            pul.check_compatible()

    def test_compatible_mixed(self):
        pul = PUL([Rename(1, "a"), ReplaceValue(2, "v"), Delete(1)])
        pul.check_compatible()

    def test_incompatible_pairs_listed(self):
        pul = PUL([ReplaceValue(1, "a"), ReplaceValue(1, "b"),
                   Rename(2, "x")])
        pairs = list(pul.incompatible_pairs())
        assert len(pairs) == 1

    def test_duplicate_deletes_are_compatible(self):
        PUL([Delete(1), Delete(1)]).check_compatible()


class TestApplicability:
    def test_applicable(self, small_doc):
        pul = PUL([Delete(2), Rename(4, "z")])
        assert pul.is_applicable(small_doc)

    def test_unknown_target_reported(self, small_doc):
        pul = PUL([Delete(999)])
        errors = pul.applicability_errors(small_doc)
        assert len(errors) == 1
        with pytest.raises(NotApplicableError):
            pul.require_applicable(small_doc)

    def test_incompatibility_reported(self, small_doc):
        pul = PUL([Rename(4, "a"), Rename(4, "b")])
        assert any("incompatible" in e
                   for e in pul.applicability_errors(small_doc))


class TestNormalization:
    def test_empty_repn_becomes_delete(self):
        pul = PUL([ReplaceNode(3, []), ReplaceNode(4, parse_forest("<x/>"))])
        normalized = pul.normalized()
        names = sorted(op.op_name for op in normalized)
        assert names == ["delete", "replaceNode"]

    def test_normalize_preserves_labels_and_origin(self):
        pul = PUL([ReplaceNode(3, [])], labels={3: "L"}, origin="p")
        normalized = pul.normalized()
        assert normalized.labels == {3: "L"}
        assert normalized.origin == "p"


class TestMerge:
    def test_merge_unions_operations(self):
        a = PUL([Delete(1)], labels={1: "la"})
        b = PUL([Rename(2, "x")], labels={2: "lb"})
        merged = merge(a, b)
        assert len(merged) == 2
        assert set(merged.labels) == {1, 2}

    def test_merge_rejects_incompatible(self):
        a = PUL([Rename(1, "x")])
        b = PUL([Rename(1, "y")])
        with pytest.raises(MergeError):
            merge(a, b)

    def test_merge_with_document_checks_applicability(self, small_doc):
        a = PUL([Delete(999)])
        with pytest.raises(MergeError):
            merge(a, PUL(), document=small_doc)

    def test_merge_of_same_rename_fails_per_w3c(self):
        # two renames of the same node are incompatible regardless of the
        # new name (Definition 3 compares no parameters)
        a = PUL([Rename(1, "x")])
        b = PUL([Rename(1, "x")])
        with pytest.raises(MergeError):
            merge(a, b)
