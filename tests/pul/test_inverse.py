"""Tests for PUL inversion (the Section 6 future-work extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotApplicableError
from repro.pul.inverse import invert_pul
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.semantics import apply_pul
from repro.xdm import parse_document, serialize
from repro.xdm.compare import canonical_string
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest

from tests.strategies import applicable_puls, documents


def roundtrip(xml, ops):
    """Apply forward then inverse; assert the document is restored with
    original-node identity preserved; return the intermediate state."""
    document = parse_document(xml)
    before = canonical_string(document.root, with_ids=True)
    forward, inverse = invert_pul(PUL(ops), document)
    apply_pul(document, forward, preserve_ids=True)
    intermediate = serialize(document) if document.root else ""
    apply_pul(document, inverse, preserve_ids=True)
    assert canonical_string(document.root, with_ids=True) == before
    return intermediate


class TestPerOperation:
    def test_insert_variants(self):
        xml = "<a><b>x</b><c/></a>"
        intermediate = roundtrip(xml, [
            InsertBefore(1, parse_forest("<p/>")),
            InsertAfter(1, parse_forest("<q/>")),
            InsertIntoAsFirst(0, parse_forest("<f/>")),
            InsertIntoAsLast(0, parse_forest("<l/>")),
            InsertInto(3, parse_forest("<i/>")),
        ])
        for marker in ("<p/>", "<q/>", "<f/>", "<l/>", "<i/>"):
            assert marker in intermediate

    def test_insert_attributes(self):
        roundtrip("<a k='v'/>", [
            InsertAttributes(0, [Node.attribute("k2", "w")])])

    def test_delete_element(self):
        intermediate = roundtrip("<a><b/><c/><d/></a>", [Delete(2)])
        assert "<c/>" not in intermediate

    def test_delete_first_child(self):
        roundtrip("<a><b/><c/></a>", [Delete(1)])

    def test_delete_text(self):
        roundtrip("<a>x<b/>y</a>", [Delete(1), Delete(3)])

    def test_delete_attribute(self):
        roundtrip("<a k='v' m='n'/>", [Delete(1)])

    def test_delete_adjacent_run_order_restored(self):
        roundtrip("<a><b/><c/><d/><e/></a>", [Delete(2), Delete(3)])

    def test_delete_all_children(self):
        roundtrip("<a><b/><c/></a>", [Delete(1), Delete(2)])

    def test_replace_node(self):
        intermediate = roundtrip(
            "<a><b>x</b></a>",
            [ReplaceNode(1, parse_forest("<n1/><n2/>"))])
        assert "<n1/><n2/>" in intermediate

    def test_replace_node_empty_is_deletion(self):
        roundtrip("<a><b/><c/></a>", [ReplaceNode(1, [])])

    def test_replace_attribute(self):
        roundtrip("<a k='v'/>", [ReplaceNode(1, [Node.attribute(
            "k2", "w")])])

    def test_replace_value(self):
        roundtrip("<a k='v'>txt</a>", [ReplaceValue(1, "w"),
                                       ReplaceValue(2, "changed")])

    def test_replace_children(self):
        intermediate = roundtrip("<a><b/>x<c/></a>",
                                 [ReplaceChildren(0, "flat")])
        assert ">flat<" in intermediate

    def test_rename(self):
        roundtrip("<a k='v'><b/></a>", [Rename(0, "r"), Rename(1, "k2")])


class TestInteractions:
    def test_nested_delete_handled_by_reduction(self):
        roundtrip("<a><b><c/></b><d/></a>", [Delete(2), Delete(1)])

    def test_override_inside_replaced_subtree(self):
        roundtrip("<a><b><c/></b></a>",
                  [Rename(2, "dead"),
                   ReplaceNode(1, parse_forest("<z/>"))])

    def test_delete_next_to_replacement(self):
        roundtrip("<a><b/><c/></a>",
                  [ReplaceNode(1, parse_forest("<z/>")), Delete(2)])

    def test_insert_then_delete_anchor(self):
        roundtrip("<a><b/><c/></a>",
                  [InsertAfter(1, parse_forest("<j/>")), Delete(1)])

    def test_mixed_everything(self):
        roundtrip(
            "<a k='1'><b>x</b><c><d/></c>tail</a>",
            [Rename(0, "root"),
             ReplaceValue(1, "2"),
             Delete(4),
             InsertIntoAsLast(0, parse_forest("<new>n</new>")),
             ReplaceChildren(5, "inner")])

    def test_root_delete_not_invertible(self):
        document = parse_document("<a/>")
        with pytest.raises(NotApplicableError):
            invert_pul(PUL([Delete(0)]), document)

    def test_inapplicable_pul_rejected(self):
        document = parse_document("<a/>")
        with pytest.raises(NotApplicableError):
            invert_pul(PUL([Delete(99)]), document)

    def test_forward_is_reduced_and_pinned(self):
        document = parse_document("<a><b/></a>")
        pul = PUL([Rename(1, "dead"), Delete(1),
                   InsertIntoAsLast(0, parse_forest("<n/>"))])
        forward, __ = invert_pul(pul, document)
        assert len(forward) == 2  # the rename was overridden
        insert = next(op for op in forward
                      if op.op_name == "insertIntoAsLast")
        assert all(node.node_id is not None
                   for tree in insert.trees
                   for node in tree.iter_subtree())


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_random_puls_roundtrip(data):
    document = data.draw(documents(max_depth=2, max_children=3))
    pul = data.draw(applicable_puls(document, max_ops=5))
    if any(op.op_name == "delete" and op.target == 0 for op in pul):
        return
    before = canonical_string(document.root, with_ids=True)
    try:
        forward, inverse = invert_pul(pul, document)
        apply_pul(document, forward, preserve_ids=True)
    except NotApplicableError:
        return  # e.g. duplicate attribute insertion
    apply_pul(document, inverse, preserve_ids=True)
    assert canonical_string(document.root, with_ids=True) == before
