"""Tests for the PUL exchange format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.labeling import ContainmentLabeling
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest

from tests.strategies import applicable_puls, documents


def roundtrip(pul):
    return pul_from_xml(pul_to_xml(pul))


class TestRoundtrip:
    def test_all_operation_kinds(self):
        pul = PUL([
            InsertAfter(3, parse_forest("<w>ww</w>")),
            InsertIntoAsLast(2, parse_forest("x-text")),
            InsertAttributes(0, [Node.attribute("k", "v")]),
            Delete(1),
            ReplaceNode(4, parse_forest("<z/>")),
            ReplaceNode(5, []),
            ReplaceValue(6, "new & <value>"),
            ReplaceChildren(7, "content"),
            ReplaceChildren(8, parse_forest("<g/>"), strict=False),
            Rename(9, "renamed"),
        ], origin="alice")
        restored = roundtrip(pul)
        assert restored == pul
        assert restored.origin == "alice"

    def test_labels_travel(self, small_doc):
        labeling = ContainmentLabeling().build(small_doc)
        pul = PUL([Delete(2)]).attach_labels(labeling)
        restored = roundtrip(pul)
        assert restored.labels[2] == labeling.label_of(2)

    def test_generalized_repc_flag_preserved(self):
        pul = PUL([ReplaceChildren(1, parse_forest("<a/><b/>"),
                                   strict=False)])
        restored = roundtrip(pul)
        assert not restored[0].strict
        assert len(restored[0].trees) == 2

    def test_identified_parameter_nodes(self):
        tree = parse_forest("<book><title>T</title></book>")[0]
        for index, node in enumerate(tree.iter_subtree()):
            node.node_id = 100 + index
        pul = PUL([InsertAfter(3, [tree])])
        restored = roundtrip(pul)
        ids = [n.node_id for n in restored[0].trees[0].iter_subtree()]
        assert ids == [100, 101, 102]

    def test_identified_text_and_attribute_parameters(self):
        text = Node.text("payload", node_id=200)
        attr = Node.attribute("k", "v", node_id=201)
        pul = PUL([InsertAfter(3, [text]),
                   InsertAttributes(0, [attr])])
        restored = roundtrip(pul)
        assert restored[0].trees[0].node_id == 200
        assert restored[1].trees[0].node_id == 201

    def test_whitespace_only_text_parameter(self):
        pul = PUL([InsertAfter(3, [Node.text("   ")])])
        restored = roundtrip(pul)
        assert restored[0].trees[0].value == "   "

    def test_escaping_in_values(self):
        pul = PUL([ReplaceValue(1, 'a"b<c>&d'), Rename(2, "n")])
        assert roundtrip(pul) == pul

    def test_mixed_content_parameter(self):
        pul = PUL([InsertAfter(3, parse_forest("<a>x<b/>y</a>"))])
        assert roundtrip(pul) == pul

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_puls(self, data):
        document = data.draw(documents())
        pul = data.draw(applicable_puls(document, stamp_ids=True))
        assert roundtrip(pul) == pul


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(SerializationError):
            pul_from_xml("<nope/>")

    def test_unknown_operation(self):
        with pytest.raises(SerializationError):
            pul_from_xml('<pul><op name="explode" target="1"/></pul>')

    def test_missing_target(self):
        with pytest.raises(SerializationError):
            pul_from_xml('<pul><op name="delete"/></pul>')

    def test_unexpected_element(self):
        with pytest.raises(SerializationError):
            pul_from_xml("<pul><operation/></pul>")
