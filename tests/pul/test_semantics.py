"""Tests for the five-stage application semantics and obtainable sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotApplicableError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.semantics import (
    apply_operation,
    apply_pul,
    apply_to_forest,
    obtainable_set,
    ObtainableLimitExceeded,
)
from repro.xdm import parse_document, serialize
from repro.xdm.compare import canonical_string
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest

from tests.strategies import applicable_puls, documents


def outcome(xml, pul_ops):
    document = parse_document(xml)
    apply_pul(document, PUL(pul_ops))
    return serialize(document) if document.root is not None else ""


class TestSingleOperations:
    def test_insert_before_after(self):
        assert outcome("<a><b/></a>",
                       [InsertBefore(1, parse_forest("<p/>")),
                        InsertAfter(1, parse_forest("<q/>"))]) == \
            "<a><p/><b/><q/></a>"

    def test_insert_first_last(self):
        assert outcome("<a><b/></a>",
                       [InsertIntoAsFirst(0, parse_forest("<p/>")),
                        InsertIntoAsLast(0, parse_forest("<q/>"))]) == \
            "<a><p/><b/><q/></a>"

    def test_insert_into_deterministic_as_first(self):
        assert outcome("<a><b/></a>",
                       [InsertInto(0, parse_forest("<p/>"))]) == \
            "<a><p/><b/></a>"

    def test_insert_attributes(self):
        assert outcome("<a/>",
                       [InsertAttributes(0, [Node.attribute("k", "v")])]) \
            == '<a k="v"/>'

    def test_delete(self):
        assert outcome("<a><b/><c/></a>", [Delete(1)]) == "<a><c/></a>"

    def test_delete_attribute(self):
        assert outcome("<a k='v'><b/></a>", [Delete(1)]) == "<a><b/></a>"

    def test_delete_root_empties_document(self):
        assert outcome("<a><b/></a>", [Delete(0)]) == ""

    def test_replace_node(self):
        assert outcome("<a><b/></a>",
                       [ReplaceNode(1, parse_forest("<x/><y/>"))]) == \
            "<a><x/><y/></a>"

    def test_replace_node_with_nothing(self):
        assert outcome("<a><b/><c/></a>", [ReplaceNode(1, [])]) == \
            "<a><c/></a>"

    def test_replace_attribute_node(self):
        assert outcome("<a k='v'/>",
                       [ReplaceNode(1, [Node.attribute("k2", "w")])]) == \
            '<a k2="w"/>'

    def test_replace_value_text(self):
        assert outcome("<a>x</a>", [ReplaceValue(1, "y")]) == "<a>y</a>"

    def test_replace_value_attribute(self):
        assert outcome("<a k='v'/>", [ReplaceValue(1, "w")]) == '<a k="w"/>'

    def test_replace_children_keeps_attributes(self):
        assert outcome("<a k='v'><b/><c/></a>",
                       [ReplaceChildren(0, "txt")]) == '<a k="v">txt</a>'

    def test_replace_children_with_nothing(self):
        assert outcome("<a><b/></a>", [ReplaceChildren(0, [])]) == "<a/>"

    def test_rename_element_and_attribute(self):
        assert outcome("<a k='v'><b/></a>",
                       [Rename(0, "r"), Rename(1, "k2")]) == \
            '<r k2="v"><b/></r>'

    def test_apply_operation_single(self, small_doc):
        apply_operation(small_doc, Rename(0, "root"))
        assert small_doc.root.name == "root"


class TestStagePrecedence:
    def test_rename_overridden_by_replace(self):
        # stage 1 rename happens, stage 3 replacement discards it
        assert outcome("<a><b/></a>",
                       [Rename(1, "dead"),
                        ReplaceNode(1, parse_forest("<z/>"))]) == \
            "<a><z/></a>"

    def test_child_insert_overridden_by_repc(self):
        assert outcome("<a><b/></a>",
                       [InsertIntoAsLast(0, parse_forest("<x/>")),
                        ReplaceChildren(0, "t")]) == "<a>t</a>"

    def test_sibling_insert_survives_delete(self):
        assert outcome("<a><b/></a>",
                       [InsertBefore(1, parse_forest("<p/>")),
                        InsertAfter(1, parse_forest("<q/>")),
                        Delete(1)]) == "<a><p/><q/></a>"

    def test_descendant_op_overridden_by_ancestor_delete(self):
        assert outcome("<a><b><c/></b></a>",
                       [Rename(2, "dead"), Delete(1)]) == "<a/>"

    def test_insert_attributes_then_repc(self):
        # repC wipes children but not the attributes inserted in stage 1
        assert outcome("<a><b/></a>",
                       [InsertAttributes(0, [Node.attribute("k", "v")]),
                        ReplaceChildren(0, "t")]) == '<a k="v">t</a>'

    def test_duplicate_attribute_dynamic_error(self):
        document = parse_document("<a k='v'/>")
        pul = PUL([InsertAttributes(0, [Node.attribute("k", "w")])])
        with pytest.raises(NotApplicableError):
            apply_pul(document, pul)

    def test_multiple_same_anchor_inserts_pul_order(self):
        assert outcome("<a><b/></a>",
                       [InsertBefore(1, parse_forest("<p1/>")),
                        InsertBefore(1, parse_forest("<p2/>"))]) == \
            "<a><p1/><p2/><b/></a>"

    def test_multiple_insert_after_reversed(self):
        assert outcome("<a><b/></a>",
                       [InsertAfter(1, parse_forest("<q1/>")),
                        InsertAfter(1, parse_forest("<q2/>"))]) == \
            "<a><b/><q2/><q1/></a>"


class TestIdentifiers:
    def test_new_ids_assigned_in_document_order(self):
        document = parse_document("<a><b/></a>")  # ids 0, 1
        pul = PUL([InsertBefore(1, parse_forest("<p/>")),
                   InsertAfter(1, parse_forest("<q/>"))])
        apply_pul(document, pul)
        p, b, q = document.root.children
        assert (p.node_id, q.node_id) == (2, 3)

    def test_preserved_ids(self):
        document = parse_document("<a><b/></a>")
        tree = Node.element("p", node_id=77)
        apply_pul(document, PUL([InsertAfter(1, [tree])]),
                  preserve_ids=True)
        assert document.get(77).name == "p"

    def test_deleted_ids_not_reused(self):
        document = parse_document("<a><b/><c/></a>")
        apply_pul(document, PUL([Delete(1),
                                 InsertIntoAsLast(0, parse_forest("<n/>"))]))
        new = document.root.children[-1]
        assert new.node_id == 3  # not the freed 1


class TestForestApplication:
    def test_apply_inside_fragment(self):
        trees = parse_forest("<a><b>x</b></a>")
        for index, node in enumerate(trees[0].iter_subtree()):
            node.node_id = 100 + index
        result = apply_to_forest(trees, [Rename(101, "bb")])
        assert result[0].children[0].name == "bb"

    def test_fragment_root_replacement(self):
        trees = parse_forest("<a/>")
        trees[0].node_id = 50
        result = apply_to_forest(
            trees, [ReplaceNode(50, parse_forest("<x/><y/>"))])
        assert [t.name for t in result] == ["x", "y"]

    def test_fragment_root_delete(self):
        trees = parse_forest("<a/><b/>")
        trees[0].node_id, trees[1].node_id = 60, 61
        result = apply_to_forest(trees, [Delete(60)])
        assert [t.name for t in result] == ["b"]

    def test_unknown_fragment_target(self):
        with pytest.raises(NotApplicableError):
            apply_to_forest(parse_forest("<a/>"), [Delete(1)])


class TestObtainableSets:
    def test_paper_example1_deterministic_delete(self, figure1):
        outcomes = obtainable_set(figure1, PUL([Delete(14)]))
        assert len(outcomes) == 1

    def test_paper_example1_insert_into(self, figure1):
        # inserting one author into the two-author <authors> (node 21)
        pul = PUL([InsertInto(21, parse_forest("<author>G.G.</author>"))])
        assert len(obtainable_set(figure1, pul)) == 3

    def test_paper_example3_cardinality(self, figure1):
        pul = PUL([
            InsertInto(21, parse_forest("<author>G.G.</author>")),
            InsertIntoAsLast(7, parse_forest("<initP>132</initP>")),
            InsertIntoAsLast(7, parse_forest("<lastP>134</lastP>")),
        ])
        assert len(obtainable_set(figure1, pul)) == 6

    def test_deterministic_outcome_is_obtainable(self, figure1):
        pul = PUL([
            InsertInto(21, parse_forest("<author>G.G.</author>")),
            InsertIntoAsLast(7, parse_forest("<initP>132</initP>")),
        ])
        outcomes = obtainable_set(figure1, pul)
        applied = figure1.copy()
        apply_pul(applied, pul)
        assert canonical_string(applied.root) in outcomes

    def test_limit_enforced(self, figure1):
        ops = [InsertInto(0, parse_forest("<n{}/>".format(i)))
               for i in range(6)]
        with pytest.raises(ObtainableLimitExceeded):
            obtainable_set(figure1, PUL(ops), limit=10)

    def test_empty_pul_single_outcome(self, small_doc):
        outcomes = obtainable_set(small_doc, PUL())
        assert len(outcomes) == 1

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_deterministic_apply_in_obtainable_set(self, data):
        document = data.draw(documents(max_depth=2, max_children=2))
        pul = data.draw(applicable_puls(document, max_ops=4))
        try:
            outcomes = obtainable_set(document, pul, limit=3000)
        except ObtainableLimitExceeded:
            return
        applied = document.copy()
        try:
            apply_pul(applied, pul)
        except NotApplicableError as error:
            # colliding renames raise the XQUF duplicate-attribute
            # dynamic error, which obtainable_set does not model
            assert "duplicate attribute" in str(error)
            return
        key = canonical_string(applied.root) if applied.root else ""
        assert key in outcomes


class TestAttributeUniqueness:
    """The XQUF dynamic error on duplicate attribute names must fire no
    matter which operation introduces the duplicate (it previously only
    guarded insA targets), and must match the streaming evaluator."""

    def test_colliding_renames_raise(self):
        document = parse_document('<c k0="y" k1=""/>')
        pul = PUL([Rename(1, "rn1"), Rename(2, "rn1")])
        with pytest.raises(NotApplicableError, match="duplicate attribute"):
            apply_pul(document, pul)

    def test_rename_onto_existing_name_raises(self):
        document = parse_document('<c k0="y" k1=""/>')
        pul = PUL([Rename(1, "k1")])
        with pytest.raises(NotApplicableError, match="duplicate attribute"):
            apply_pul(document, pul)

    def test_attribute_replacement_collision_raises(self):
        document = parse_document('<c k0="y" k1=""/>')
        pul = PUL([ReplaceNode(1, [Node.attribute("k1", "v")])])
        with pytest.raises(NotApplicableError, match="duplicate attribute"):
            apply_pul(document, pul)

    def test_detached_duplicates_are_ignored(self):
        # the owning element is deleted: the duplicate never reaches the
        # result, so (like the streaming evaluator) no error is raised
        document = parse_document('<a><c k0="y" k1=""/></a>')
        pul = PUL([Rename(2, "rn1"), Rename(3, "rn1"), Delete(1)])
        apply_pul(document, pul)
        assert serialize(document) == "<a/>"

    def test_distinct_renames_apply(self):
        document = parse_document('<c k0="y" k1=""/>')
        pul = PUL([Rename(1, "rn1"), Rename(2, "rn2")])
        apply_pul(document, pul)
        assert serialize(document) == '<c rn1="y" rn2=""/>'
