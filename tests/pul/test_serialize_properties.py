"""Round-trip properties of the PUL exchange format.

The wire format is contribution (i) of the paper: a PUL — operations,
parameter trees with producer-assigned identifiers, target labels, the
producer name — must survive serialization unchanged, because executors
reason on exactly what arrives. Hypothesis drives random applicable PULs
(with the escaping-hostile origins and values of
:mod:`tests.strategies`) through ``pul_to_xml`` / ``pul_from_xml``.
"""

from hypothesis import HealthCheck, given, settings

from repro.pul.serialize import pul_from_xml, pul_to_xml

from tests.strategies import wire_puls

_SETTINGS = dict(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _tree_shape(node):
    """Structure + ids + names + values of a parameter tree."""
    return (
        node.node_type.value,
        node.node_id,
        getattr(node, "name", None),
        getattr(node, "value", None),
        tuple(_tree_shape(attr) for attr in
              (node.attributes if node.is_element else ())),
        tuple(_tree_shape(child) for child in
              (node.children if node.is_element else ())),
    )


@settings(**_SETTINGS)
@given(wire_puls())
def test_round_trip_is_identity(pul):
    restored = pul_from_xml(pul_to_xml(pul))
    assert restored == pul
    assert restored.origin == (
        None if pul.origin is None else str(pul.origin))


@settings(**_SETTINGS)
@given(wire_puls())
def test_round_trip_preserves_labels_exactly(pul):
    restored = pul_from_xml(pul_to_xml(pul))
    expected = {target: pul.labels[target] for target in pul.targets()
                if target in pul.labels}
    assert restored.labels == expected
    for target, label in restored.labels.items():
        assert label == expected[target]
        assert label.to_string() == expected[target].to_string()


@settings(**_SETTINGS)
@given(wire_puls())
def test_round_trip_preserves_operation_order_and_trees(pul):
    """Beyond multiset equality: the wire keeps the operation sequence
    and every parameter tree node-for-node (ids included)."""
    restored = pul_from_xml(pul_to_xml(pul))
    assert len(restored) == len(pul)
    for original, decoded in zip(pul, restored):
        assert decoded.op_name == original.op_name
        assert decoded.target == original.target
        assert [_tree_shape(t) for t in decoded.trees] == \
            [_tree_shape(t) for t in original.trees]


@settings(**_SETTINGS)
@given(wire_puls())
def test_serialization_is_idempotent(pul):
    """serialize ∘ deserialize is the identity on wire texts."""
    wire = pul_to_xml(pul)
    assert pul_to_xml(pul_from_xml(wire)) == wire


@settings(**_SETTINGS)
@given(wire_puls())
def test_serialization_does_not_mutate_the_pul(pul):
    before = [op.describe() for op in pul]
    labels_before = dict(pul.labels)
    pul_to_xml(pul)
    assert [op.describe() for op in pul] == before
    assert pul.labels == labels_before
