"""Figure 6b — reduction time vs PUL size.

The paper reduces PULs of 5k-100k operations with roughly one successful
rule application every 10 operations, measuring deserialize + reduce +
reserialize, and observes the O(k log k) trend with serialization
dominating. Sizes scaled /10.
"""

import pytest

from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.reduction import reduce_deterministic
from repro.workloads import generate_reducible_pul

SIZES = (500, 2000, 8000)


@pytest.fixture(scope="module")
def workloads(xmark_medium, xmark_medium_labeling):
    prepared = {}
    for size in SIZES:
        pul = generate_reducible_pul(xmark_medium, size, hit_ratio=0.1,
                                     seed=11)
        pul.attach_labels(xmark_medium_labeling)
        prepared[size] = (pul, pul_to_xml(pul))
    return prepared


@pytest.mark.parametrize("size", SIZES)
def test_reduce_only(benchmark, workloads, xmark_medium_oracle, size):
    pul, __ = workloads[size]
    result = benchmark(reduce_deterministic, pul, xmark_medium_oracle)
    assert len(result) <= len(pul)


@pytest.mark.parametrize("size", SIZES)
def test_deserialize_reduce_reserialize(benchmark, workloads,
                                        xmark_medium_oracle, size):
    __, wire = workloads[size]

    def run():
        received = pul_from_xml(wire)
        return pul_to_xml(reduce_deterministic(received,
                                               xmark_medium_oracle))

    benchmark(run)
