"""Ablation — CDBS vs CDQS label encoders.

Build time and total code length over the same document; the paper's cited
work ([15]) motivates CDQS with shorter codes at slightly higher per-digit
cost, which this ablation reproduces.
"""

import pytest

from repro.labeling import CDBSEncoder, CDQSEncoder, ContainmentLabeling

ENCODERS = {"CDBS": CDBSEncoder, "CDQS": CDQSEncoder}


@pytest.mark.parametrize("name", sorted(ENCODERS))
def test_build_labeling(benchmark, xmark_medium, name):
    encoder_class = ENCODERS[name]

    def run():
        return ContainmentLabeling(encoder=encoder_class()).build(
            xmark_medium)

    labeling = benchmark(run)
    total = sum(len(label.start) + len(label.end)
                for label in labeling.as_mapping().values())
    benchmark.extra_info["total_code_chars"] = total


@pytest.mark.parametrize("name", sorted(ENCODERS))
def test_incremental_insertions(benchmark, name):
    """A pathological all-at-the-same-gap insertion sequence."""
    encoder = ENCODERS[name]()

    def run():
        left, right = "1", "2" if encoder.base == 4 else "11"
        for __ in range(300):
            left = encoder.between(left, right)
        return left

    benchmark(run)
