"""Durability overhead and recovery time.

What the write-ahead log costs and what it buys: the same
concurrent-client workload is flushed through the store under each
durability policy (``off`` / ``log`` / ``log+snapshot:N``), giving the
throughput overhead of logging and of compaction; then durable sessions
of growing length are recovered from disk, giving recovery time as a
function of log length — linear for a bare log, bounded by the snapshot
interval under compaction.

Two entry points:

* under pytest (like the figure benchmarks): ``pytest
  benchmarks/bench_durability.py`` times a resident flush session with
  and without the write-ahead log;
* as a script: ``python benchmarks/bench_durability.py --scale 0.05
  --policy log`` prints the policy table and the recovery sweep
  (``--json FILE`` additionally writes the machine-readable summary the
  CI benchmark gate consumes).
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import pytest

from repro.store import DocumentStore
from repro.workloads import generate_client_batches, generate_xmark
from repro.xdm.serializer import serialize

CLIENTS = 4
ROUNDS = 6
OPS_PER_ROUND = 120
SMOKE_MAX_OVERHEAD = 2.5


def _session(text, batches, policy, wal_dir, workers=2, backend="serial"):
    """Flush the whole workload under ``policy``; returns the summed
    flush wall time."""
    store = DocumentStore(
        workers=workers, backend=backend,
        durability=policy if policy != "off" else None,
        wal_dir=wal_dir if policy != "off" else None)
    elapsed = 0.0
    try:
        store.open("bench", text)
        for submissions in batches:
            for client, pul in submissions:
                store.submit("bench", pul.copy(), client=client)
            start = time.perf_counter()
            store.flush("bench")
            elapsed += time.perf_counter() - start
        return elapsed, store.text("bench")
    finally:
        store.close()


# -- pytest mode --------------------------------------------------------------


@pytest.fixture(scope="module")
def client_workload(xmark_medium):
    batches, expected = generate_client_batches(
        xmark_medium, clients=CLIENTS, rounds=ROUNDS,
        ops_per_round=OPS_PER_ROUND, seed=11)
    return serialize(xmark_medium), batches, serialize(expected)


@pytest.mark.parametrize("policy", ["off", "log", "log+snapshot:2"])
def test_flush_under_policy(benchmark, client_workload, tmp_path, policy):
    text, batches, expected = client_workload
    runs = {"count": 0}

    def session():
        wal_dir = str(tmp_path / "wal-{}".format(runs["count"]))
        runs["count"] += 1
        __, result = _session(text, batches, policy, wal_dir)
        return result

    result = benchmark(session)
    assert result == expected


def test_recovery_from_log(benchmark, client_workload, tmp_path):
    text, batches, expected = client_workload
    wal_dir = str(tmp_path / "wal-recover")
    __, result = _session(text, batches, "log", wal_dir)
    assert result == expected

    def recover():
        with DocumentStore(workers=2, backend="serial",
                           durability="log", wal_dir=wal_dir) as store:
            return store.text("bench")

    assert benchmark(recover) == expected


# -- script mode --------------------------------------------------------------


def run_policy_comparison(text, batches, policies, workers, backend,
                          repeats, workdir):
    """Best-of-``repeats`` flush time per policy; returns
    ``policy -> {"wall_s", "ops_per_sec", "overhead"}`` (overhead is
    relative to the ``off`` policy when it was measured)."""
    submitted = sum(len(pul) for round_ in batches for __, pul in round_)
    results = {}
    reference_text = None
    for policy in policies:
        times = []
        for repeat in range(repeats):
            wal_dir = os.path.join(
                workdir, "{}-{}".format(policy.replace(":", "_"), repeat))
            elapsed, result = _session(text, batches, policy, wal_dir,
                                       workers=workers, backend=backend)
            if reference_text is None:
                reference_text = result
            elif result != reference_text:
                raise AssertionError(
                    "policy {} changed the output bytes".format(policy))
            times.append(elapsed)
        wall = min(times)
        results[policy] = {
            "wall_s": wall,
            "median_wall_s": sorted(times)[len(times) // 2],
            "ops_per_sec": submitted / wall if wall else float("inf"),
        }
    if "off" in results:
        base = results["off"]["wall_s"]
        for policy, row in results.items():
            row["overhead"] = row["wall_s"] / base if base else 1.0
    return results


def run_recovery_sweep(text, batches, policy, workers, backend, workdir,
                       lengths):
    """Recovery time after ``k`` logged batches, for each ``k``."""
    rows = []
    for length in lengths:
        wal_dir = os.path.join(
            workdir, "recover-{}-{}".format(policy.replace(":", "_"),
                                            length))
        _session(text, batches[:length], policy, wal_dir,
                 workers=workers, backend=backend)
        start = time.perf_counter()
        with DocumentStore(workers=workers, backend=backend,
                           durability=policy, wal_dir=wal_dir) as store:
            elapsed = time.perf_counter() - start
            report = store.recovery
        rows.append({
            "batches": length,
            "policy": policy,
            "recovery_s": elapsed,
            "replayed": report.replayed_batches if report else 0,
        })
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="durability overhead and recovery time")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="XMark document scale")
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--ops", type=int, default=50,
                        help="operations per round")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--backend", default="serial",
                        choices=("process", "thread", "serial"))
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--policy", action="append", default=None,
                        help="durability policy to measure (repeatable); "
                             "'off' is always measured as the baseline")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail if the 'log' policy exceeds this "
                             "overhead factor vs 'off'")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the machine-readable summary here")
    args = parser.parse_args(argv)

    policies = args.policy or ["log", "log+snapshot:4"]
    if "off" not in policies:
        policies = ["off"] + policies

    document = generate_xmark(scale=args.scale, seed=7)
    text = serialize(document)
    batches, __ = generate_client_batches(
        document, clients=args.clients, rounds=args.rounds,
        ops_per_round=args.ops, seed=args.seed)
    submitted = sum(len(pul) for round_ in batches for __unused, pul
                    in round_)
    print("workload: {} rounds x {} ops from {} clients on {} nodes "
          "({} submitted ops)".format(
              args.rounds, args.ops, args.clients,
              sum(1 for __unused in document.nodes()), submitted))

    workdir = tempfile.mkdtemp(prefix="repro-durability-")
    try:
        results = run_policy_comparison(
            text, batches, policies, args.workers, args.backend,
            args.repeats, workdir)
        print("\n{:>16} {:>10} {:>12} {:>10}".format(
            "policy", "time", "ops/sec", "overhead"))
        for policy in policies:
            row = results[policy]
            print("{:>16} {:>9.4f}s {:>12.0f} {:>9.2f}x".format(
                policy, row["wall_s"], row["ops_per_sec"],
                row.get("overhead", 1.0)))

        lengths = sorted({max(1, args.rounds // 4),
                          max(1, args.rounds // 2), args.rounds})
        sweep = []
        for policy in policies:
            if policy == "off":
                continue
            sweep.extend(run_recovery_sweep(
                text, batches, policy, args.workers, args.backend,
                workdir, lengths))
        print("\nrecovery time vs log length:")
        print("{:>16} {:>8} {:>9} {:>11}".format(
            "policy", "batches", "replayed", "recovery"))
        for row in sweep:
            print("{:>16} {:>8} {:>9} {:>10.4f}s".format(
                row["policy"], row["batches"], row["replayed"],
                row["recovery_s"]))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    log_row = results.get("log")
    if args.json:
        headline = log_row or next(
            (results[p] for p in policies if p != "off"), results["off"])
        payload = {"bench_durability": {
            "ops_per_sec": headline["ops_per_sec"],
            "median_wall_s": headline["median_wall_s"],
            "policies": {policy: {key: row[key]
                                  for key in ("wall_s", "ops_per_sec",
                                              "overhead")
                                  if key in row}
                         for policy, row in results.items()},
            "recovery": sweep,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("\nwrote {}".format(args.json))

    if args.max_overhead is not None and log_row is not None:
        overhead = log_row.get("overhead")
        if overhead is not None and overhead > args.max_overhead:
            print("FAIL: log-policy overhead {:.2f}x exceeds the "
                  "{:.2f}x budget".format(overhead, args.max_overhead))
            return 1
        print("log-policy overhead {:.2f}x within the {:.2f}x "
              "budget".format(overhead, args.max_overhead))
    return 0


if __name__ == "__main__":
    sys.exit(main())
