"""Store throughput — resident-incremental vs parse + full relabel.

The experiment behind the serving-layer claim: a store that keeps
documents and their containment labelings resident between batches, and
relabels incrementally (full relabel only when code headroom runs out),
processes update batches faster than a stateless service that re-parses
and fully relabels per batch — while producing byte-identical documents
(verified on every round).

Two entry points:

* under pytest (like the figure benchmarks): ``pytest
  benchmarks/bench_store_throughput.py`` times a resident flush against
  a stateless flush on the shared medium XMark workload;
* as a script: ``python benchmarks/bench_store_throughput.py
  --scale 0.25 --rounds 10`` prints the comparison table, including the
  degenerate-headroom sweep that forces full-relabel fallbacks.
"""

import argparse
import json
import sys

import pytest

from repro.store import DEFAULT_MAX_CODE_LENGTH, DocumentStore, \
    StatelessBaseline
from repro.store.bench import run_overhead_benchmark, run_store_benchmark
from repro.workloads import generate_client_batches
from repro.xdm.serializer import serialize

ROUNDS = 6
CLIENTS = 4
OPS_PER_ROUND = 120


@pytest.fixture(scope="module")
def client_workload(xmark_medium):
    batches, expected = generate_client_batches(
        xmark_medium, clients=CLIENTS, rounds=ROUNDS,
        ops_per_round=OPS_PER_ROUND, seed=11)
    return serialize(xmark_medium), batches, serialize(expected)


def test_resident_incremental_flush(benchmark, client_workload):
    text, batches, expected = client_workload

    def session():
        store = DocumentStore(workers=2, backend="serial")
        store.open("bench", text)
        try:
            for submissions in batches:
                for client, pul in submissions:
                    store.submit("bench", pul.copy(), client=client)
                store.flush("bench")
            return store.text("bench")
        finally:
            store.close()

    result = benchmark(session)
    assert result == expected


def test_stateless_full_relabel_flush(benchmark, client_workload):
    text, batches, expected = client_workload

    def session():
        baseline = StatelessBaseline(measure_parse=True)
        baseline.open("bench", text)
        for submissions in batches:
            for client, pul in submissions:
                baseline.submit("bench", pul.copy(), client=client)
            baseline.flush("bench")
        return baseline.text("bench")

    result = benchmark(session)
    assert result == expected


# -- script mode -------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="resident-incremental vs parse+full-relabel store "
                    "throughput")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="XMark document scale")
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--ops", type=int, default=OPS_PER_ROUND,
                        help="operations per round")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--backend", default="serial",
                        choices=("process", "thread", "serial"))
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-depth", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=1,
                        help="steady-state sessions to run; the summary "
                             "keeps the best (variance control for the "
                             "CI gate)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary (name -> "
                             "ops/sec, median wall time) here")
    args = parser.parse_args(argv)

    print("== headroom budget {} (incremental steady state) ==".format(
        DEFAULT_MAX_CODE_LENGTH))
    reports = [
        run_store_benchmark(
            scale=args.scale, clients=args.clients, rounds=args.rounds,
            ops_per_round=args.ops, workers=args.workers,
            backend=args.backend, seed=args.seed,
            min_depth=args.min_depth)
        for __ in range(max(1, args.repeats))]
    report = min(reports, key=lambda r: r.resident_time)
    for line in report.lines():
        print(line)

    # a tight budget forces the fallback, bounding the worst case: even
    # relabeling fully every few batches the resident store never pays
    # the per-batch parse
    print("\n== headroom budget 16 (forced full-relabel fallbacks) ==")
    tight = run_store_benchmark(
        scale=args.scale, clients=args.clients, rounds=args.rounds,
        ops_per_round=args.ops, workers=args.workers,
        backend=args.backend, max_code_length=16, seed=args.seed,
        min_depth=args.min_depth)
    for line in tight.lines():
        print(line)
    if not (report.verified and tight.verified):
        return 1
    print("\nincremental-vs-full summary: steady-state {:.2f}x, "
          "fallback-heavy {:.2f}x".format(report.speedup, tight.speedup))

    # the observability layer must be cheap enough to leave on: the
    # same workload, instrumented vs metrics=False, best-of-repeats
    # each way (efficiency 1.0 = free; the CI gate floors it at 0.95,
    # i.e. <5% overhead)
    print("\n== instrumentation overhead (metrics on vs off) ==")
    instrumented, plain = run_overhead_benchmark(
        scale=args.scale, clients=args.clients, rounds=args.rounds,
        ops_per_round=args.ops, workers=args.workers,
        backend=args.backend, seed=args.seed,
        repeats=max(1, args.repeats))
    efficiency = plain / instrumented if instrumented else 1.0
    print("instrumented {:8.4f}s   metrics=off {:8.4f}s   "
          "efficiency {:.3f}".format(instrumented, plain, efficiency))

    if args.json:
        submitted = args.rounds * args.ops
        payload = {"bench_store_throughput": {
            "ops_per_sec": (submitted / report.resident_time
                            if report.resident_time else float("inf")),
            "median_wall_s": report.resident_time,
            "speedup_vs_stateless": report.speedup,
            "instrumentation_efficiency": efficiency,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
