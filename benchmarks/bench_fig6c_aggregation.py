"""Figure 6c — aggregation of a growing list of PULs.

The paper aggregates up to 15 PULs of 1000 operations each (half targeting
nodes not in the original document) and finds the aggregation cost proper
under 5 ms, dominated by (de)serialization.
"""

import pytest

from repro.aggregation import aggregate
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.workloads import generate_sequential_puls

COUNTS = (3, 9, 15)
OPS_PER_PUL = 1000


@pytest.fixture(scope="module")
def chains(xmark_medium):
    prepared = {}
    for count in COUNTS:
        puls, __ = generate_sequential_puls(
            xmark_medium, count, OPS_PER_PUL, new_node_ratio=0.5, seed=13)
        prepared[count] = (puls, [pul_to_xml(p) for p in puls])
    return prepared


@pytest.mark.parametrize("count", COUNTS)
def test_aggregate_only(benchmark, chains, count):
    puls, __ = chains[count]
    result = benchmark(aggregate, puls)
    assert len(result) <= count * OPS_PER_PUL


@pytest.mark.parametrize("count", COUNTS)
def test_deserialize_aggregate_reserialize(benchmark, chains, count):
    __, wires = chains[count]

    def run():
        received = [pul_from_xml(wire) for wire in wires]
        return pul_to_xml(aggregate(received))

    benchmark(run)
