"""Figure 6d — aggregate-then-apply vs sequential application.

Applying the aggregate of a PUL list in one streamed pass against applying
every PUL in its own pass: the advantage is significant and grows with the
number of PULs (the document is traversed once instead of N times).
"""

import pytest

from repro.aggregation import aggregate
from repro.apply.events import events_to_xml, parse_events
from repro.apply.streaming import apply_streaming
from repro.workloads import generate_sequential_puls

COUNTS = (2, 5, 10)
OPS_PER_PUL = 200


@pytest.fixture(scope="module")
def chains(xmark_medium, xmark_medium_text):
    prepared = {}
    for count in COUNTS:
        puls, __ = generate_sequential_puls(
            xmark_medium, count, OPS_PER_PUL, seed=17)
        prepared[count] = puls
    return prepared


@pytest.mark.parametrize("count", COUNTS)
def test_aggregate_then_single_pass(benchmark, chains, xmark_medium_text,
                                    count):
    puls = chains[count]

    def run():
        combined = aggregate(puls)
        return events_to_xml(apply_streaming(
            parse_events(xmark_medium_text), combined, check=False))

    benchmark(run)


@pytest.mark.parametrize("count", COUNTS)
def test_sequential_passes(benchmark, chains, xmark_medium_text, count):
    puls = chains[count]

    def run():
        current = xmark_medium_text
        for pul in puls:
            current = events_to_xml(apply_streaming(
                parse_events(current), pul, check=False))
        return current

    benchmark(run)
