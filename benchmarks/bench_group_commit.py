"""Durable flush throughput under concurrency — the group-commit bench.

The experiment behind the PR 6 commit-train claim: with per-batch
append+fsync, N clients flushing concurrently pay N fsyncs; with group
commit one leader fsync covers every record appended while the train
was boarding, so durable flushes/sec rises with concurrency while
fsyncs-per-flush falls toward ``1/N``.

Each round runs ``--threads`` clients, each flushing its own resident
document ``--flushes`` times on one log-durable
:class:`~repro.store.DocumentStore` (fresh WAL directory per repeat).
``os.fsync`` is wrapped — never replaced — to count calls, so the
reported ``fsyncs_per_flush`` is measured, not inferred. A
single-threaded pass runs first as the unamortized reference.

Usage::

    python benchmarks/bench_group_commit.py --threads 8 --flushes 30
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

import repro.store.durability.wal as wal_module
from repro.pul.ops import ReplaceValue
from repro.pul.pul import PUL
from repro.store import DocumentStore
from repro.xdm.parser import parse_document

DOC_TEXT = "<doc><meta><owner>bench</owner></meta></doc>"


class _FsyncCounter:
    """Wraps ``os.fsync`` inside the WAL module to count calls."""

    def __init__(self):
        self.count = 0
        self._real = os.fsync

    def __enter__(self):
        def counting(fd):
            self.count += 1
            return self._real(fd)
        wal_module.os.fsync = counting
        return self

    def __exit__(self, *exc_info):
        wal_module.os.fsync = self._real


def _owner_text_id():
    document = parse_document(DOC_TEXT)
    owner = next(n for n in document.nodes()
                 if n.is_element and n.name == "owner")
    return owner.children[0].node_id


def run_round(threads, flushes, wal_dir):
    """One measured pass; returns ``(wall seconds, fsync count)``."""
    text_id = _owner_text_id()
    with DocumentStore(backend="serial", durability="log",
                       wal_dir=wal_dir) as store:
        for index in range(threads):
            store.open("d{}".format(index), DOC_TEXT)
        barrier = threading.Barrier(threads + 1)
        errors = []

        def client(index):
            doc_id = "d{}".format(index)
            barrier.wait()
            try:
                for round_index in range(flushes):
                    store.submit(doc_id, PUL(
                        [ReplaceValue(text_id,
                                      "v{}".format(round_index))],
                        origin=doc_id))
                    store.flush(doc_id)
            except Exception as exc:    # pragma: no cover - bench guard
                errors.append(exc)

        workers = [threading.Thread(target=client, args=(index,))
                   for index in range(threads)]
        for worker in workers:
            worker.start()
        with _FsyncCounter() as counter:
            barrier.wait()
            start = time.perf_counter()
            for worker in workers:
                worker.join()
            wall = time.perf_counter() - start
        if errors:
            raise errors[0]
    return wall, counter.count


def measure(threads, flushes, repeats):
    best = None
    for __ in range(max(1, repeats)):
        wal_dir = tempfile.mkdtemp(prefix="bench-group-commit-")
        try:
            wall, fsyncs = run_round(threads, flushes, wal_dir)
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
        if best is None or wall < best[0]:
            best = (wall, fsyncs)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="durable flush throughput under concurrency "
                    "(group commit)")
    parser.add_argument("--threads", type=int, default=8,
                        help="concurrent flushing clients")
    parser.add_argument("--flushes", type=int, default=30,
                        help="durable flushes per client")
    parser.add_argument("--repeats", type=int, default=2,
                        help="passes per configuration; the summary "
                             "keeps the best (variance control)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary here")
    args = parser.parse_args(argv)

    serial_wall, serial_fsyncs = measure(1, args.flushes, args.repeats)
    serial_rate = args.flushes / serial_wall if serial_wall \
        else float("inf")
    print("serial reference: 1 thread x {} flushes  {:8.3f}s  "
          "{:>8.0f} flush/s  {:.2f} fsyncs/flush".format(
              args.flushes, serial_wall, serial_rate,
              serial_fsyncs / args.flushes))

    total = args.threads * args.flushes
    wall, fsyncs = measure(args.threads, args.flushes, args.repeats)
    rate = total / wall if wall else float("inf")
    per_flush = fsyncs / total if total else 0.0
    print("group commit: {} threads x {} flushes  {:8.3f}s  "
          "{:>8.0f} flush/s  {:.2f} fsyncs/flush".format(
              args.threads, args.flushes, wall, rate, per_flush))
    print("\ngroup-commit summary: {:.2f}x the serial durable rate, "
          "{:.0%} of the one-fsync-per-flush cost".format(
              rate / serial_rate if serial_rate else float("inf"),
              per_flush))

    if args.json:
        payload = {"bench_group_commit": {
            "ops_per_sec": rate,
            "median_wall_s": wall,
            "fsyncs_per_flush": per_flush,
            "serial_ops_per_sec": serial_rate,
            "concurrency_speedup": (rate / serial_rate
                                    if serial_rate else float("inf")),
            "threads": args.threads,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
