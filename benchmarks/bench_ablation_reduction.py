"""Ablation — optimized staged reduction engine vs the naive reference.

The optimized engine realizes the O(k log k) complexity of Section 3.1;
the naive engine searches operation pairs rule by rule (the executable
specification). The gap widens quickly with PUL size.
"""

import pytest

from repro.reduction import reduce_deterministic, reduce_naive
from repro.workloads import generate_reducible_pul

SIZES = (50, 200, 800)


@pytest.fixture(scope="module")
def puls(xmark_medium):
    return {size: generate_reducible_pul(xmark_medium, size,
                                         hit_ratio=0.1, seed=31)
            for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_optimized_engine(benchmark, puls, xmark_medium_oracle, size):
    benchmark(reduce_deterministic, puls[size], xmark_medium_oracle)


@pytest.mark.parametrize("size", [SIZES[0], SIZES[1]])
def test_naive_engine(benchmark, puls, xmark_medium_oracle, size):
    benchmark.pedantic(
        reduce_naive, args=(puls[size], xmark_medium_oracle),
        kwargs={"deterministic": True}, rounds=2, iterations=1)
