"""Replication: read-throughput scaling vs replica count, and
steady-state replication lag.

The experiment behind the PR 5 scale-out claim. Every node is a real
``repro cluster serve`` *process* (own interpreter, own GIL, ephemeral
TCP port; replicas stream the leader's WAL through the live
:class:`ReplicaSync` path) — in-process "nodes" would share one GIL
and could never show genuine read scaling. Two measurements:

**Read scaling** — one leader plus R replicas. A fixed read workload
(``text`` + ``query``, round-robined by :class:`ClusterClient` across
the replica set; the leader serves the R=0 baseline) is driven from
``--readers`` concurrent threads; ops/sec per replica count shows
reads fanning out across processes instead of re-serializing on one.

**Steady-state lag** — with a writer continuously submitting and
flushing against the leader, the replica's acknowledged position is
sampled against the leader's stream end after every flush; mean and
max record lag (plus the final catch-up time) quantify how far an
asynchronous follower trails a busy leader.

Usage::

    python benchmarks/bench_replication.py \
        --replicas 0 1 2 --reads 600 --readers 6 --json out.json
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if REPO_SRC not in sys.path:       # direct `python benchmarks/...` runs
    sys.path.insert(0, REPO_SRC)

from repro.api.client import StoreClient          # noqa: E402
from repro.cluster import ClusterClient, parse_address  # noqa: E402

DOC_TEXT = ("<doc><items>{}</items><meta><owner>bench</owner></meta>"
            "</doc>".format("".join(
                '<x n="{}"><v>payload text {}</v></x>'.format(i, i)
                for i in range(60))))

WRITE_EXPR = 'insert node <w/> as last into /doc/items'


def _node_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class _Cluster:
    """A leader plus R streaming replicas, each its own process."""

    def __init__(self, replica_count, workers, backend):
        self.replica_count = replica_count
        self.workers = workers
        self.backend = backend
        self.tmp_dir = tempfile.mkdtemp(prefix="bench-repl-")
        self.processes = []
        self.leader_address = None
        self.replica_addresses = []

    def _spawn(self, extra):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster", "serve",
             "--listen", "127.0.0.1:0",
             "--workers", str(self.workers),
             "--backend", self.backend,
             "--poll-wait", "0.2"] + extra,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=_node_env())
        self.processes.append(process)
        banner = process.stdout.readline().strip()
        if not banner.startswith("listening tcp "):
            raise RuntimeError("node failed to bind: " + banner)
        process.stdout.readline()             # the role line
        return banner.split()[-1]

    def __enter__(self):
        self.leader_address = self._spawn(
            ["--role", "leader", "--durability", "log",
             "--wal-dir", os.path.join(self.tmp_dir, "leader")])
        for index in range(self.replica_count):
            self.replica_addresses.append(self._spawn(
                ["--role", "replica", "--leader", self.leader_address,
                 "--replica-id", "bench-r{}".format(index)]))
        return self

    def __exit__(self, *exc_info):
        for process in reversed(self.processes):
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30)
        shutil.rmtree(self.tmp_dir, ignore_errors=True)

    # -- remote observation ---------------------------------------------------

    def _stats(self, address):
        host, port = parse_address(address)
        with StoreClient.connect(host=host, port=port,
                                 retries=4) as client:
            return client.stats()

    def leader_seq(self):
        return self._stats(self.leader_address)["replication"]["seq"]

    def applied_seq(self, address):
        replication = self._stats(address).get("replication") or {}
        return replication.get("applied_seq", 0)

    def wait_caught_up(self, timeout=60.0):
        target = self.leader_seq()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(self.applied_seq(address) >= target
                   for address in self.replica_addresses):
                return True
            time.sleep(0.05)
        raise RuntimeError("replicas never caught up")


def _router(cluster):
    return ClusterClient(
        [{"leader": cluster.leader_address,
          "replicas": list(cluster.replica_addresses)}],
        client="bench-router", retries=4)


def measure_read_scaling(replica_count, reads, readers, workers,
                         backend, repeats):
    """Best-of-``repeats`` read throughput with ``replica_count``
    replica processes serving the fan-out."""
    best = None
    for __ in range(max(1, repeats)):
        with _Cluster(replica_count, workers, backend) as cluster:
            with _router(cluster) as seed:
                seed.open("d1", DOC_TEXT)
                seed.submit_xquery("d1", WRITE_EXPR)
                seed.flush("d1")
            if cluster.replica_addresses:
                cluster.wait_caught_up()

            errors = []

            def reader():
                try:
                    with _router(cluster) as client:
                        for serial in range(reads // readers):
                            if serial % 2:
                                client.text("d1")
                            else:
                                client.query("d1", "/doc/items/x")
                except Exception as exc:      # noqa: BLE001 — reported
                    errors.append(exc)

            threads = [threading.Thread(target=reader)
                       for __unused in range(readers)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
            if errors:
                raise errors[0]
        if best is None or wall < best:
            best = wall
    total = (reads // readers) * readers
    return {"wall_s": best, "ops_per_sec": total / best if best else 0.0}


def measure_lag(write_rounds, workers, backend):
    """Steady-state lag: a continuous writer vs one streaming replica."""
    with _Cluster(1, workers, backend) as cluster:
        replica = cluster.replica_addresses[0]
        with _router(cluster) as writer:
            writer.open("d1", DOC_TEXT)
            cluster.wait_caught_up()
            samples = []
            for __ in range(write_rounds):
                writer.submit_xquery("d1", WRITE_EXPR)
                writer.flush("d1")
                samples.append(max(0, cluster.leader_seq()
                                   - cluster.applied_seq(replica)))
            catchup_start = time.perf_counter()
            cluster.wait_caught_up()
            catchup_s = time.perf_counter() - catchup_start
    return {
        "lag_records_mean": sum(samples) / len(samples),
        "lag_records_max": max(samples),
        "catchup_s": catchup_s,
        "write_rounds": write_rounds,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="replication read scaling and steady-state lag "
                    "(multi-process nodes)")
    parser.add_argument("--replicas", type=int, nargs="+",
                        default=[0, 1, 2],
                        help="replica counts to sweep (0 = leader-only "
                             "baseline)")
    parser.add_argument("--reads", type=int, default=600,
                        help="total read requests per configuration")
    parser.add_argument("--readers", type=int, default=6,
                        help="concurrent reader threads")
    parser.add_argument("--write-rounds", type=int, default=40,
                        help="flushed writes during the lag phase")
    parser.add_argument("--workers", type=int, default=2,
                        help="store reduction workers per node")
    parser.add_argument("--backend", default="thread",
                        choices=("process", "thread", "serial"))
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per configuration; the summary "
                             "keeps the best (variance control for "
                             "the CI gate)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary here")
    args = parser.parse_args(argv)

    print("== read scaling: {} reads x {} readers, process-per-node =="
          .format(args.reads, args.readers))
    scaling = {}
    for count in args.replicas:
        result = measure_read_scaling(count, args.reads, args.readers,
                                      args.workers, args.backend,
                                      args.repeats)
        scaling[count] = result
        print("replicas {:>2}: {:8.3f}s  {:>10.0f} ops/s".format(
            count, result["wall_s"], result["ops_per_sec"]))

    baseline = scaling[min(scaling)]["ops_per_sec"]
    best_count = max(scaling, key=lambda c: scaling[c]["ops_per_sec"])
    best = scaling[best_count]
    speedup = best["ops_per_sec"] / baseline if baseline else 0.0
    print("read scaling: {} replicas reach {:.0f} ops/s, {:.2f}x over "
          "{} replicas".format(best_count, best["ops_per_sec"], speedup,
                               min(scaling)))
    cores = os.cpu_count() or 1
    if cores <= max(scaling) + 1:
        print("note: {} core(s) for {} node processes — replica "
              "scaling is core-bound on this machine; the curve needs "
              "one core per node to open up".format(
                  cores, max(scaling) + 1))

    print("\n== steady-state lag: {} flushed writes ==".format(
        args.write_rounds))
    lag = measure_lag(args.write_rounds, args.workers, args.backend)
    print("lag: mean {:.1f} / max {} record(s); final catch-up "
          "{:.3f}s".format(lag["lag_records_mean"],
                           lag["lag_records_max"], lag["catchup_s"]))

    if args.json:
        payload = {"bench_replication": {
            "ops_per_sec": best["ops_per_sec"],
            "median_wall_s": best["wall_s"],
            "read_scaling_speedup": speedup,
            "best_replica_count": best_count,
            "cpu_count": os.cpu_count(),
            "replica_counts": {str(count): metrics
                               for count, metrics in scaling.items()},
            **lag,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
