"""In-text finding E6 — PUL size has a negligible effect on evaluation
time (evaluation cost tracks document size, not operation count)."""

import pytest

from repro.apply.events import events_to_xml, parse_events
from repro.apply.streaming import apply_streaming
from repro.workloads import generate_pul

SIZES = (125, 500, 2000)


@pytest.mark.parametrize("size", SIZES)
def test_streamed_evaluation_by_pul_size(benchmark, xmark_medium,
                                         xmark_medium_text, size):
    pul = generate_pul(xmark_medium, size, seed=23)

    def run():
        return events_to_xml(apply_streaming(
            parse_events(xmark_medium_text), pul,
            fresh_start=len(xmark_medium), check=False))

    benchmark(run)
