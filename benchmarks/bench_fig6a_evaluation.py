"""Figure 6a — streaming vs in-memory PUL evaluation.

The paper evaluates a 1000-operation PUL over XMark documents from 1 MB to
256 MB and finds streaming ~3x faster, with the gap growing with document
size. Here the document sizes are scaled down; the benchmark ids encode the
scale so the trend is visible in the pytest-benchmark table.
"""

import pytest

from repro.apply.events import events_to_xml, parse_events
from repro.apply.inmemory import apply_in_memory
from repro.apply.streaming import apply_streaming
from repro.workloads import generate_pul, generate_xmark
from repro.xdm.serializer import serialize

SCALES = (0.0625, 0.25, 1.0)
PUL_OPS = 1000


def _workload(scale):
    document = generate_xmark(scale=scale, seed=7)
    text = serialize(document)
    pul = generate_pul(document, PUL_OPS, seed=7)
    return document, text, pul


@pytest.mark.parametrize("scale", SCALES)
def test_streaming_evaluation(benchmark, scale):
    document, text, pul = _workload(scale)
    benchmark.extra_info["doc_mb"] = round(len(text) / 1e6, 3)

    def run():
        return events_to_xml(apply_streaming(
            parse_events(text), pul, fresh_start=len(document),
            check=False))

    benchmark(run)


@pytest.mark.parametrize("scale", SCALES)
def test_inmemory_evaluation(benchmark, scale):
    document, text, pul = _workload(scale)
    benchmark.extra_info["doc_mb"] = round(len(text) / 1e6, 3)

    def run():
        return apply_in_memory(text, pul)

    benchmark(run)
