"""Frame codec throughput — protocol v2 binary vs v1 JSON.

Times encode+decode round trips of the protocol's hot message shapes
(a ``submit`` request carrying an XML payload, a ``text`` response
carrying a serialized document, a small ``stats`` poll) under both
codecs. The v2 claim: strings travel as raw length-prefixed UTF-8, so
the codec stops paying JSON escape-and-rescan on every kilobyte of
XML.

Usage::

    python benchmarks/bench_wire_codec.py --messages 3000 --xml-bytes 4096
"""

import argparse
import json
import sys
import time

from repro.api import protocol
from repro.api.protocol import HEADER_SIZE, decode_payload, encode_frame


def build_messages(xml_bytes):
    """The measured mix: one write, one bulk read, one cheap poll."""
    xml = ('<items>' + '<item attr="v&amp;al">text&#10;</item>'
           * max(1, xml_bytes // 40) + '</items>')
    return [
        protocol.request(7, "submit", {"doc_id": "d1", "pul": xml}),
        protocol.ok_response(8, {"doc_id": "d1", "text": xml}),
        protocol.request(9, "stats", {"doc_id": "d1"}),
    ]


def roundtrip_rate(messages, count, version, repeats):
    """Best-of-``repeats`` messages/sec for encode+decode."""
    best = None
    for __ in range(max(1, repeats)):
        start = time.perf_counter()
        for index in range(count):
            message = messages[index % len(messages)]
            frame = encode_frame(message, version=version)
            decoded = decode_payload(frame[HEADER_SIZE:],
                                     version=version)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        assert decoded == messages[(count - 1) % len(messages)]
    return count / best if best else float("inf"), best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="binary (v2) vs JSON (v1) frame codec throughput")
    parser.add_argument("--messages", type=int, default=3000,
                        help="encode+decode round trips per pass")
    parser.add_argument("--xml-bytes", type=int, default=4096,
                        help="approximate XML payload size")
    parser.add_argument("--repeats", type=int, default=3,
                        help="passes per codec; the summary keeps the "
                             "best")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary here")
    args = parser.parse_args(argv)

    messages = build_messages(args.xml_bytes)
    frame_v1 = sum(len(encode_frame(m, version=1)) for m in messages)
    frame_v2 = sum(len(encode_frame(m, version=2)) for m in messages)
    print("message mix: {} messages, ~{} XML bytes; frames "
          "v1={}B v2={}B".format(len(messages), args.xml_bytes,
                                 frame_v1, frame_v2))

    v1_rate, v1_wall = roundtrip_rate(messages, args.messages, 1,
                                      args.repeats)
    v2_rate, v2_wall = roundtrip_rate(messages, args.messages, 2,
                                      args.repeats)
    print("v1 JSON:   {:8.3f}s  {:>10.0f} msg/s".format(v1_wall,
                                                        v1_rate))
    print("v2 binary: {:8.3f}s  {:>10.0f} msg/s".format(v2_wall,
                                                        v2_rate))
    speedup = v2_rate / v1_rate if v1_rate else float("inf")
    print("\ncodec summary: v2 decodes+encodes {:.2f}x the JSON "
          "rate".format(speedup))

    if args.json:
        payload = {"bench_wire_codec": {
            "ops_per_sec": v2_rate,
            "median_wall_s": v2_wall,
            "json_ops_per_sec": v1_rate,
            "speedup_vs_json": speedup,
            "frame_bytes_v1": frame_v1,
            "frame_bytes_v2": frame_v2,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
