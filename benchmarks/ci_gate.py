"""The CI benchmark-regression gate.

Runs the throughput benchmarks in smoke mode, merges their
``--json`` summaries into one trajectory file ``BENCH_<pr>.json``
(schema: ``benches.<name> -> {ops_per_sec, median_wall_s, ...}`` plus a
``calibration_rps`` machine-speed score), and compares every shared
bench against the newest committed *earlier* ``BENCH_*.json``: a bench
whose ops/sec fell by more than the tolerance (default ±30%) fails the
gate. Improvements always pass — the committed file is a floor, not a
pin — and a missing baseline passes trivially (first gated PR).

Committed ops/sec are absolute numbers from whatever machine produced
the baseline file, so comparing them raw against a CI runner would gate
on hardware, not code. Each run therefore also times a fixed
pure-Python calibration workload and stores the result; the gate
rescales the baseline's ops/sec by the ratio of the two calibration
scores (``this machine / baseline machine``) before applying the
tolerance, which cancels the hardware difference to first order. A
baseline without a calibration score is compared raw (legacy files).
The baseline is always from a *strictly lower* PR number than the
trajectory being written, and the write number defaults to one past the
newest committed file — so the no-flag CI run is gated against the full
committed history, and the file being (re)written never gates itself.

The trajectory convention: each PR commits its own ``BENCH_<pr>.json``
at the repo root, so the series of files records how throughput moved
across the project's history, and CI uploads the freshly measured file
as an artifact for drill-down.

Usage (CI runs exactly this)::

    python benchmarks/ci_gate.py --pr 3 --tolerance 0.30
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")

#: bench script -> smoke-mode arguments. Kept small enough for CI, but
#: large enough that each timed section runs >~100ms best-of-N — the
#: ±30% gate needs measurements steadier than the tolerance.
SMOKE_RUNS = (
    ("bench_pipeline_scaling.py",
     ["--ops", "4000", "--scale", "0.05", "--repeats", "5",
      "--workers", "1", "2"]),
    ("bench_store_throughput.py",
     ["--scale", "0.05", "--rounds", "5", "--ops", "60",
      "--repeats", "3"]),
    ("bench_durability.py",
     ["--scale", "0.05", "--rounds", "5", "--ops", "50", "--repeats", "3",
      "--policy", "log", "--policy", "log+snapshot:2",
      "--max-overhead", "2.5"]),
    ("bench_server_concurrency.py",
     ["--connections", "4", "--ops", "100", "--depths", "1", "8",
      "--repeats", "3"]),
    ("bench_replication.py",
     ["--replicas", "0", "2", "--reads", "300", "--readers", "4",
      "--write-rounds", "15", "--repeats", "2"]),
    ("bench_wire_codec.py",
     ["--messages", "2000", "--xml-bytes", "4096", "--repeats", "3"]),
    ("bench_group_commit.py",
     ["--threads", "8", "--flushes", "25", "--repeats", "3"]),
    ("bench_query_serving.py",
     ["--scale", "0.02", "--readers", "4", "--rounds", "8",
      "--repeats", "2"]),
    ("bench_cdc.py",
     ["--writes", "120", "--poll-writes", "10", "--repeats", "2"]),
    ("bench_bulk_load.py",
     ["--docs", "120", "--chunk-docs", "40", "--repeats", "2"]),
)

#: machine-independent metric floors checked on *this* run's summary
#: (dimensionless ratios, so no calibration applies). These pin claims
#: a committed baseline cannot express: the ops/sec gate only guards
#: against regression relative to history, these guard an absolute
#: property of the current code.
METRIC_FLOORS = {
    "bench_server_concurrency": {"pipelining_speedup": 1.3},
    "bench_wire_codec": {"speedup_vs_json": 1.0},
    # reads served during active writes, MVCC over flush-locked, same
    # machine/run: a dimensionless proof that writes don't block reads
    # (the real ratio is ~10x; 2x holds on any hardware).
    # index_speedup: walker time over planner time on a selective
    # ``//name`` against a >=5k-node document, same machine/run (the
    # real ratio is >50x; 3x holds on any hardware)
    "bench_query_serving": {"read_write_overlap": 2.0,
                            "index_speedup": 3.0},
    # metrics-on vs metrics=False on the same workload/machine/run:
    # the observability layer must cost <5% to leave on by default
    "bench_store_throughput": {"instrumentation_efficiency": 0.95},
}


#: calibration loop sizing: ~100ms per timed pass on a 2020s laptop —
#: long enough that scheduler noise stays well inside the gate tolerance
CALIBRATION_ROUNDS = 30
CALIBRATION_PASSES = 3

#: benches dominated by fsync/disk latency rather than CPU: the CPU
#: calibration cannot predict their cross-machine ratio, so their floor
#: scales by the *fsync* calibration when the baseline recorded one
#: (still clamped to 1.0 — never raised above the committed number),
#: and by the clamped CPU scale otherwise — a fast-CPU/slow-disk
#: runner must not fail the gate on hardware. The inverse direction (a
#: regression hidden by a slower runner) is an accepted smoke-gate
#: tradeoff.
IO_BOUND_BENCHES = frozenset({"bench_durability",
                              "bench_group_commit",
                              "bench_bulk_load"})

#: benches whose throughput depends on the runner's *core count*
#: (process-per-node clusters) as well as per-core speed: the CPU
#: calibration cannot see topology, so like the I/O-bound set their
#: floor is never raised above the committed number
TOPOLOGY_BOUND_BENCHES = frozenset({"bench_replication"})


def _calibration_workload():
    """One fixed, deterministic unit of pure-Python work.

    Dict/list/str churn roughly matching the benches' instruction mix;
    deliberately free of repo code so the score tracks the *machine*,
    never the code under test (a faster tree or labeling must not move
    the calibration and mask itself)."""
    values = list(range(4000))
    mapping = {}
    for value in values:
        mapping["k{}".format(value)] = (value * 2654435761) % 4093
    total = 0
    for key in sorted(mapping):
        total += mapping[key]
    return total


def machine_calibration(rounds=CALIBRATION_ROUNDS,
                        passes=CALIBRATION_PASSES):
    """Workload rounds/sec on this machine (best-of-``passes``)."""
    best = None
    for __ in range(passes):
        start = time.perf_counter()
        for __ in range(rounds):
            _calibration_workload()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return rounds / best


def io_calibration(passes=CALIBRATION_PASSES, syncs=20):
    """fsync round-trips/sec on this machine (best-of-``passes``).

    The durability benches are bounded by fsync latency, which the CPU
    score cannot see — the same runner can swing 2x between runs as
    the host's storage load varies. Measured against a scratch file on
    the same filesystem the benches put their WALs on (the default
    temp dir), so the score moves with exactly the latency that moves
    the benches."""
    best = None
    handle, path = tempfile.mkstemp(prefix="ci_gate_io_")
    try:
        for __ in range(passes):
            start = time.perf_counter()
            for __ in range(syncs):
                os.pwrite(handle, b"x" * 64, 0)
                os.fsync(handle)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        os.close(handle)
        os.unlink(path)
    return syncs / best


def committed_trajectories():
    """``pr number -> path`` for every *committed* ``BENCH_<pr>.json``
    in the repo root.

    Git-tracked files only: an untracked file left behind by a previous
    local gate run is that run's output, not a baseline — globbing it
    would make repeated local runs gate against themselves and drift
    the default trajectory number upward. Outside a git checkout the
    directory glob is the best available approximation."""
    try:
        names = subprocess.run(
            ["git", "-C", REPO_ROOT, "ls-files", "BENCH_*.json"],
            check=True, capture_output=True, text=True).stdout.split()
    except (OSError, subprocess.CalledProcessError):
        names = [os.path.basename(path) for path in
                 glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))]
    found = {}
    for name in names:
        match = re.match(r"^BENCH_(\d+)\.json$", os.path.basename(name))
        if match:
            found[int(match.group(1))] = os.path.join(REPO_ROOT, name)
    return found


def select_baseline(committed, pr):
    """The newest committed trajectory from a strictly earlier PR (or
    ``None``): the file being written never gates itself."""
    return max((n for n in committed if n < pr), default=None)


def default_pr(committed):
    """One past the newest committed trajectory.

    The default run (CI passes no ``--pr``) must gate against the full
    committed history: defaulting to ``max(committed)`` would make the
    strictly-earlier baseline rule skip the newest file — and, on a
    branch where the newest file is the only one, skip the gate
    entirely."""
    return max(committed, default=0) + 1


def run_benches(runs=SMOKE_RUNS):
    """Run each bench script with ``--json``; returns the merged
    ``bench name -> metrics`` dict."""
    benches = {}
    for script, arguments in runs:
        with tempfile.NamedTemporaryFile(
                mode="r", suffix=".json", delete=False) as handle:
            json_path = handle.name
        command = [sys.executable, os.path.join(BENCH_DIR, script)]
        command += list(arguments) + ["--json", json_path]
        print("== {} {}".format(script, " ".join(arguments)), flush=True)
        try:
            subprocess.run(command, check=True)
            with open(json_path, "r", encoding="utf-8") as handle:
                benches.update(json.load(handle))
        finally:
            try:
                os.unlink(json_path)
            except OSError:
                pass
    return benches


def _score(metrics):
    """Orders two measurements of one bench: ops/sec when the summary
    has it (the trajectory gate's metric), the largest metric value
    otherwise (floor-only summaries — all floored metrics are
    higher-is-better ratios)."""
    value = metrics.get("ops_per_sec")
    if isinstance(value, (int, float)):
        return value
    numbers = [v for v in metrics.values() if isinstance(v, (int, float))]
    return max(numbers) if numbers else float("-inf")


def compare(current, previous, tolerance, scale=1.0, io_scale=None):
    """Return the list of regression messages (empty = gate passes).

    ``scale`` rescales the baseline's committed ops/sec to this
    machine: this run's calibration score over the baseline file's (a
    runner half as fast as the committing machine halves every expected
    ops/sec, so the floor halves with it). :data:`IO_BOUND_BENCHES`
    rescale by ``io_scale`` — the fsync-rate ratio — when the baseline
    recorded one, since CPU speed says nothing about fsync latency;
    either way their floor is never raised above the committed
    number."""
    failures = []
    for name in sorted(set(current) & set(previous)):
        now = current[name].get("ops_per_sec")
        then = previous[name].get("ops_per_sec")
        if not isinstance(now, (int, float)) \
                or not isinstance(then, (int, float)) or not then:
            continue
        if name in IO_BOUND_BENCHES and io_scale is not None:
            then *= min(io_scale, 1.0)
        elif name in IO_BOUND_BENCHES \
                or name in TOPOLOGY_BOUND_BENCHES:
            then *= min(scale, 1.0)
        else:
            then *= scale
        floor = then * (1.0 - tolerance)
        verdict = "ok" if now >= floor else "REGRESSION"
        print("{:>11} {:<24} {:>12.0f} ops/s vs {:>12.0f} "
              "(floor {:>12.0f})".format(verdict, name, now, then, floor))
        if now < floor:
            failures.append(
                "{}: {:.0f} ops/s is below the {:.0f} ops/s floor "
                "({:.0f} ops/s machine-adjusted baseline, -{:.0%} "
                "tolerance)".format(name, now, floor, then, tolerance))
    return failures


def check_floors(current, floors=METRIC_FLOORS):
    """Absolute-metric failures on this run (empty = pass); applies
    even without a committed baseline — the floors are properties of
    the code, not of history."""
    failures = []
    for name, metrics in sorted(floors.items()):
        summary = current.get(name)
        if summary is None:
            continue
        for metric, floor in sorted(metrics.items()):
            value = summary.get(metric)
            if not isinstance(value, (int, float)):
                failures.append("{}: metric {} missing from the "
                                "summary".format(name, metric))
                continue
            verdict = "ok" if value >= floor else "REGRESSION"
            print("{:>11} {:<24} {:>12.2f} {} (floor {:.2f})".format(
                verdict, name, value, metric, floor))
            if value < floor:
                failures.append(
                    "{}: {} of {:.2f} is below the {:.2f} floor".format(
                        name, metric, value, floor))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="benchmark smoke runs + regression gate")
    parser.add_argument("--pr", type=int, default=None,
                        help="trajectory number to write; the baseline "
                             "is the newest committed BENCH_<n>.json "
                             "with n strictly below it (default: one "
                             "past the highest committed number, so "
                             "the gate engages the full committed "
                             "history)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative ops/sec drop (0.30 = "
                             "-30%%)")
    parser.add_argument("--out", default=None,
                        help="output path (default: "
                             "BENCH_<pr>.json in the repo root)")
    args = parser.parse_args(argv)

    committed = committed_trajectories()
    pr = args.pr if args.pr is not None else default_pr(committed)
    out_path = args.out or os.path.join(REPO_ROOT,
                                        "BENCH_{}.json".format(pr))

    # the baseline is the newest trajectory from an *earlier* PR: a PR
    # gated against its own committed file would compare absolute
    # ops/sec across the committing machine and the CI runner with no
    # code change in between — pure hardware noise
    baseline_pr = select_baseline(committed, pr)
    previous = {}
    baseline_calibration = None
    baseline_io = None
    if baseline_pr is not None:
        with open(committed[baseline_pr], "r", encoding="utf-8") as handle:
            baseline_payload = json.load(handle)
        previous = baseline_payload.get("benches", {})
        baseline_calibration = baseline_payload.get("calibration_rps")
        baseline_io = baseline_payload.get("io_calibration_fps")

    calibration = machine_calibration()
    io_rate = io_calibration()
    print("machine calibration: {:.0f} rounds/s, {:.0f} fsync/s".format(
        calibration, io_rate))
    benches = run_benches()
    payload = {"pr": pr,
               "schema": "bench name -> ops_per_sec, median_wall_s; "
                         "calibration_rps = machine speed score; "
                         "io_calibration_fps = machine fsync score",
               "calibration_rps": calibration,
               "io_calibration_fps": io_rate,
               "benches": benches}
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nwrote {}".format(out_path))

    print("absolute metric floors:")
    failures = check_floors(benches)
    if not previous:
        print("no committed earlier baseline: trajectory gate passes "
              "trivially")
    else:
        scale = 1.0
        if isinstance(baseline_calibration, (int, float)) \
                and baseline_calibration > 0:
            scale = calibration / baseline_calibration
        io_scale = None
        if isinstance(baseline_io, (int, float)) and baseline_io > 0:
            io_scale = io_rate / baseline_io
        print("comparing against BENCH_{}.json (tolerance -{:.0%}, "
              "machine scale {:.2f}x, io scale {}):".format(
                  baseline_pr, args.tolerance, scale,
                  "{:.2f}x".format(io_scale) if io_scale is not None
                  else "n/a"))
        failures += compare(benches, previous, args.tolerance,
                            scale=scale, io_scale=io_scale)
    if failures:
        # One retry for exactly the failing benches: smoke runs on
        # shared runners swing far more than the tolerance (an idle
        # neighbor can halve a 100ms measurement), so a single bad
        # sample must not fail the gate — while a real regression
        # fails the re-measurement too. The better of the two
        # measurements is what the trajectory file records.
        flaky = {failure.split(":", 1)[0] for failure in failures}
        reruns = tuple((script, arguments)
                       for script, arguments in SMOKE_RUNS
                       if os.path.splitext(script)[0] in flaky)
        if reruns:
            print("\nretrying {} failing bench(es) once (noise vs "
                  "regression: a regression fails twice)".format(
                      len(reruns)))
            for name, metrics in run_benches(reruns).items():
                if _score(metrics) > _score(benches.get(name, {})):
                    benches[name] = metrics
            with open(out_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("\nbest-of-two, absolute metric floors:")
            failures = check_floors(benches)
            if previous:
                print("best-of-two vs BENCH_{}.json:".format(baseline_pr))
                failures += compare(benches, previous, args.tolerance,
                                    scale=scale, io_scale=io_scale)
    if failures:
        for failure in failures:
            print("FAIL: {}".format(failure))
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
