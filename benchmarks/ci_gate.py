"""The CI benchmark-regression gate.

Runs the three throughput benchmarks in smoke mode, merges their
``--json`` summaries into one trajectory file ``BENCH_<pr>.json``
(schema: ``benches.<name> -> {ops_per_sec, median_wall_s, ...}``), and
compares every shared bench against the newest *committed*
``BENCH_*.json``: a bench whose ops/sec fell by more than the tolerance
(default ±30%) fails the gate. Improvements always pass — the committed
file is a floor, not a pin — and a missing baseline passes trivially
(first gated PR).

The trajectory convention: each PR commits its own ``BENCH_<pr>.json``
at the repo root, so the series of files records how throughput moved
across the project's history, and CI uploads the freshly measured file
as an artifact for drill-down.

Usage (CI runs exactly this)::

    python benchmarks/ci_gate.py --pr 3 --tolerance 0.30
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")

#: bench script -> smoke-mode arguments. Kept small enough for CI, but
#: large enough that each timed section runs >~100ms best-of-N — the
#: ±30% gate needs measurements steadier than the tolerance.
SMOKE_RUNS = (
    ("bench_pipeline_scaling.py",
     ["--ops", "4000", "--scale", "0.05", "--repeats", "5",
      "--workers", "1", "2"]),
    ("bench_store_throughput.py",
     ["--scale", "0.05", "--rounds", "5", "--ops", "60",
      "--repeats", "3"]),
    ("bench_durability.py",
     ["--scale", "0.05", "--rounds", "5", "--ops", "50", "--repeats", "3",
      "--policy", "log", "--policy", "log+snapshot:2",
      "--max-overhead", "2.5"]),
)


def committed_trajectories():
    """``pr number -> path`` for every ``BENCH_<pr>.json`` in the repo
    root."""
    found = {}
    for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")):
        match = re.match(r"^BENCH_(\d+)\.json$", os.path.basename(path))
        if match:
            found[int(match.group(1))] = path
    return found


def run_benches(runs=SMOKE_RUNS):
    """Run each bench script with ``--json``; returns the merged
    ``bench name -> metrics`` dict."""
    benches = {}
    for script, arguments in runs:
        with tempfile.NamedTemporaryFile(
                mode="r", suffix=".json", delete=False) as handle:
            json_path = handle.name
        command = [sys.executable, os.path.join(BENCH_DIR, script)]
        command += list(arguments) + ["--json", json_path]
        print("== {} {}".format(script, " ".join(arguments)), flush=True)
        try:
            subprocess.run(command, check=True)
            with open(json_path, "r", encoding="utf-8") as handle:
                benches.update(json.load(handle))
        finally:
            try:
                os.unlink(json_path)
            except OSError:
                pass
    return benches


def compare(current, previous, tolerance):
    """Return the list of regression messages (empty = gate passes)."""
    failures = []
    for name in sorted(set(current) & set(previous)):
        now = current[name].get("ops_per_sec")
        then = previous[name].get("ops_per_sec")
        if not isinstance(now, (int, float)) \
                or not isinstance(then, (int, float)) or not then:
            continue
        floor = then * (1.0 - tolerance)
        verdict = "ok" if now >= floor else "REGRESSION"
        print("{:>11} {:<24} {:>12.0f} ops/s vs {:>12.0f} "
              "(floor {:>12.0f})".format(verdict, name, now, then, floor))
        if now < floor:
            failures.append(
                "{}: {:.0f} ops/s is below the {:.0f} ops/s floor "
                "({:.0f} ops/s committed, -{:.0%} tolerance)".format(
                    name, now, floor, then, tolerance))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="benchmark smoke runs + regression gate")
    parser.add_argument("--pr", type=int, default=None,
                        help="trajectory number to write (default: the "
                             "highest committed BENCH_<n>.json number)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative ops/sec drop (0.30 = "
                             "-30%%)")
    parser.add_argument("--out", default=None,
                        help="output path (default: "
                             "BENCH_<pr>.json in the repo root)")
    args = parser.parse_args(argv)

    committed = committed_trajectories()
    pr = args.pr if args.pr is not None else max(committed, default=0)
    out_path = args.out or os.path.join(REPO_ROOT,
                                        "BENCH_{}.json".format(pr))

    # resolve the baseline before the fresh file can overwrite it
    baseline_pr = max((n for n in committed if n <= pr), default=None)
    previous = {}
    if baseline_pr is not None:
        with open(committed[baseline_pr], "r", encoding="utf-8") as handle:
            previous = json.load(handle).get("benches", {})

    benches = run_benches()
    payload = {"pr": pr, "schema": "bench name -> ops_per_sec, "
                                   "median_wall_s", "benches": benches}
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nwrote {}".format(out_path))

    if not previous:
        print("no committed baseline: gate passes trivially")
        return 0
    print("comparing against BENCH_{}.json (tolerance -{:.0%}):".format(
        baseline_pr, args.tolerance))
    failures = compare(benches, previous, args.tolerance)
    if failures:
        for failure in failures:
            print("FAIL: {}".format(failure))
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
