"""Pipeline scaling — sharded parallel reduction vs the sequential engine.

Two entry points:

* under pytest (like the figure benchmarks): ``pytest
  benchmarks/bench_pipeline_scaling.py`` benchmarks the sequential
  reduction against the pipeline at 1/2/4 workers;
* as a script: ``python benchmarks/bench_pipeline_scaling.py --ops 10000``
  prints a speedup table (and verifies every configuration produces the
  sequential reduction), using the record-local ``min_depth`` pulgen
  workload on an XMark document.

Parallel speedup requires real cores: on a single-CPU host the process
backend only adds serialization overhead, which the table makes visible
rather than hiding.
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro.labeling import ContainmentLabeling
from repro.pipeline import ParallelReducer, merge_shards, shard_pul
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.reduction import reduce_deterministic
from repro.workloads import generate_pul, generate_xmark

WORKER_COUNTS = (1, 2, 4)
OPS_PER_PUL = 10_000


@pytest.fixture(scope="module")
def workload(xmark_medium, xmark_medium_labeling):
    pul = generate_pul(xmark_medium, OPS_PER_PUL, seed=23,
                       labeling=xmark_medium_labeling, min_depth=3)
    return xmark_medium, pul


def test_sequential_reduction(benchmark, workload):
    __, pul = workload
    result = benchmark(reduce_deterministic, pul)
    assert len(result) <= len(pul)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_pipeline_reduction(benchmark, workload, workers):
    __, pul = workload
    reducer = ParallelReducer(workers=workers, backend="process")

    def run():
        outcome = reducer.reduce(pul)
        return merge_shards(outcome.reduced)

    result = benchmark(run)
    assert result == reduce_deterministic(pul)


def test_shard_cost(benchmark, workload):
    __, pul = workload
    shards = benchmark(shard_pul, pul, 4)
    assert sum(len(s) for s in shards) == len(pul)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_pipeline_wire_stage(benchmark, workload, workers):
    """The distributed-worker stage: decode + reduce + encode per shard."""
    __, pul = workload
    payloads = [pul_to_xml(s) for s in shard_pul(pul, workers)]
    reducer = ParallelReducer(workers=workers, backend="process")

    def run():
        reduced, __ = reducer.reduce_wire(payloads)
        return reduced

    reduced = benchmark(run)
    merged = merge_shards([pul_from_xml(p) for p in reduced])
    assert merged == reduce_deterministic(pul)


# -- script mode -------------------------------------------------------------


def _best_of(repeats, fn):
    times, result = _timed(repeats, fn)
    return min(times), result


def _timed(repeats, fn):
    times = []
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return times, result


def _median(times):
    ordered = sorted(times)
    return ordered[len(ordered) // 2]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="sharded pipeline scaling report")
    parser.add_argument("--ops", type=int, default=OPS_PER_PUL)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="XMark document scale")
    parser.add_argument("--min-depth", type=int, default=3)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=list(WORKER_COUNTS))
    parser.add_argument("--backend", default="process",
                        choices=("process", "thread", "serial"))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary (name -> "
                             "ops/sec, median wall time) here")
    args = parser.parse_args(argv)

    document = generate_xmark(scale=args.scale, seed=7)
    labeling = ContainmentLabeling().build(document)
    pul = generate_pul(document, args.ops, seed=23, labeling=labeling,
                       min_depth=args.min_depth)
    print("document: xmark scale={} ({} nodes); PUL: {} ops "
          "(min_depth={}); cores: {}".format(
              args.scale, sum(1 for __ in document.nodes()), len(pul),
              args.min_depth, os.cpu_count()))

    sequential_times, sequential = _timed(
        args.repeats, lambda: reduce_deterministic(pul))
    sequential_time = min(sequential_times)
    print("sequential reduction: {:8.4f}s  ({} -> {} ops)".format(
        sequential_time, len(pul), len(sequential)))

    shards = shard_pul(pul, max(args.workers))
    print("sharding: {} shards, sizes {}".format(
        len(shards), sorted((len(s) for s in shards), reverse=True)))

    print("\nstage A — in-memory reduction (shard + reduce + merge):")
    print("{:>8} {:>10} {:>9}  {}".format(
        "workers", "time", "speedup", "backend=" + args.backend))
    reached = {}
    for workers in args.workers:
        reducer = ParallelReducer(workers=workers, backend=args.backend)

        def run():
            outcome = reducer.reduce(pul)
            return merge_shards(outcome.reduced)

        elapsed, merged = _best_of(args.repeats, run)
        reducer.close()
        if merged != sequential:
            print("!! workers={}: result differs from the sequential "
                  "reduction".format(workers))
            return 1
        speedup = sequential_time / elapsed if elapsed else float("inf")
        print("{:>8} {:>9.4f}s {:>8.2f}x  (verified equal)".format(
            workers, elapsed, speedup))

    # stage B: the distributed-worker stage. The executor receives the
    # PUL on the wire, so the sequential engine pays decode + reduce +
    # encode — exactly what wire-mode workers parallelize.
    wire = pul_to_xml(pul)
    sequential_wire_time, __ = _best_of(
        args.repeats,
        lambda: pul_to_xml(reduce_deterministic(pul_from_xml(wire))))
    print("\nstage B — wire stage (decode + reduce + encode):")
    print("sequential: {:8.4f}s".format(sequential_wire_time))
    print("{:>8} {:>10} {:>9}".format("workers", "time", "speedup"))
    for workers in args.workers:
        payloads = [pul_to_xml(s) for s in shard_pul(pul, workers)]
        reducer = ParallelReducer(workers=workers, backend=args.backend)

        def run_wire():
            reduced, __ = reducer.reduce_wire(payloads)
            return reduced

        elapsed, reduced = _best_of(args.repeats, run_wire)
        reducer.close()
        merged = merge_shards([pul_from_xml(p) for p in reduced])
        if merged != sequential:
            print("!! workers={}: wire result differs from the "
                  "sequential reduction".format(workers))
            return 1
        speedup = sequential_wire_time / elapsed if elapsed \
            else float("inf")
        reached[workers] = speedup
        print("{:>8} {:>9.4f}s {:>8.2f}x  (verified equal)".format(
            workers, elapsed, speedup))

    target = 1.5
    best = max(reached.values())
    verdict = "meets" if best >= target else "below"
    print("\npeak wire-stage speedup {:.2f}x — {} the {:.1f}x target"
          " (parallel gains need >1 core; this host has {})".format(
              best, verdict, target, os.cpu_count()))

    if args.json:
        median = _median(sequential_times)
        payload = {"bench_pipeline_scaling": {
            "ops_per_sec": len(pul) / median if median else float("inf"),
            "median_wall_s": median,
            "peak_wire_speedup": best,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
