"""Read serving: MVCC pinned reads under write load, and indexed
query execution against the tree walker.

The experiment behind the MVCC PR's claim: a reader must never wait for
the writer. One writer thread continuously flushes rename batches whose
in-place application is artificially slowed (a sleep inside the batch
applier models a genuinely expensive batch — the sleep releases the
GIL, so on any core count the readers *could* run; whether they *do* is
pure locking policy). Against that write load, ``--readers`` threads
hammer ``text`` two ways:

* **mvcc** — the store's real read path: pin the published version,
  serialize, unpin. Never touches the flush lock.
* **locked baseline** — what every read paid before this PR: acquire
  the entry's ``flush_lock``, serialize, release. Blocks for the full
  apply window of any in-flight batch.

The headline ``ops_per_sec`` is the MVCC arm's reads/sec under write
load; ``read_write_overlap`` (MVCC reads/sec over locked reads/sec,
same machine, same run) is the machine-independent ratio the CI gate
floors, and ``reads_during_apply`` counts reads that *completed while a
batch was mid-apply* — definitionally zero for a correct locked
baseline, the direct proof of overlap for MVCC.

The second experiment is the index PR's claim: a **selectivity sweep**
runs the same path queries through ``engine="walk"`` (the tree walker)
and ``engine="auto"`` (the cost-based planner over the secondary
index) on a ≥5k-node document. Rare names are where the index pays:
``//needle`` touches a 20-entry bucket instead of walking every node.
``index_speedup`` (walker time over indexed time on the selective
query, same machine, same run) is the machine-independent ratio the CI
gate floors; dense queries are reported too — the planner's cost model
keeps them near 1x rather than slowing them down.

Usage::

    python benchmarks/bench_query_serving.py \
        --scale 0.02 --readers 4 --rounds 8 --repeats 2 --json out.json
"""

import argparse
import json
import os
import sys
import threading
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if REPO_SRC not in sys.path:       # direct `python benchmarks/...` runs
    sys.path.insert(0, REPO_SRC)

import repro.store.store as store_module          # noqa: E402
from repro.pul.ops import Rename                  # noqa: E402
from repro.pul.pul import PUL                     # noqa: E402
from repro.store import DocumentStore             # noqa: E402
from repro.workloads.xmark import generate_xmark  # noqa: E402
from repro.xdm.serializer import serialize        # noqa: E402

#: artificial per-batch apply cost (seconds): the window the readers
#: either overlap (MVCC) or stall in (locked)
APPLY_SLEEP_S = 0.05


class _SlowApply:
    """Wrap the batch applier with a sleep and an "applying" flag."""

    def __init__(self, sleep_s=APPLY_SLEEP_S):
        self.sleep_s = sleep_s
        self.applying = threading.Event()
        self._real = store_module.apply_batch_in_place

    def __enter__(self):
        def slow_apply(document, labeling, pul, preserve_ids=True):
            self.applying.set()
            try:
                time.sleep(self.sleep_s)
                return self._real(document, labeling, pul,
                                  preserve_ids=preserve_ids)
            finally:
                self.applying.clear()

        store_module.apply_batch_in_place = slow_apply
        return self

    def __exit__(self, *exc_info):
        store_module.apply_batch_in_place = self._real


def _run_arm(scale, readers, rounds, read_fn_name):
    """One measured pass: returns ``(reads, wall_s, overlapped)``.

    ``read_fn_name`` picks the read policy: ``"mvcc"`` (the store's
    pinned read path) or ``"locked"`` (the pre-MVCC behaviour, emulated
    by serializing under the entry's flush lock)."""
    document = generate_xmark(scale=scale, seed=42)
    with DocumentStore(backend="serial") as store, _SlowApply() as slow:
        store.open("d", document)
        entry = store._entries["d"]
        target = next(n.node_id for n in store.document("d").nodes()
                      if n.is_element and n.name == "item")

        if read_fn_name == "mvcc":
            def read_once():
                store.text_version("d")
        else:
            def read_once():
                with entry.flush_lock:
                    serialize(entry.published.document)

        stop = threading.Event()
        counts = [0] * readers
        overlapped = [0] * readers

        def read_loop(slot):
            while not stop.is_set():
                read_once()
                counts[slot] += 1
                if slow.applying.is_set():
                    overlapped[slot] += 1

        threads = [threading.Thread(target=read_loop, args=(slot,),
                                    daemon=True)
                   for slot in range(readers)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for i in range(rounds):
            store.submit("d", PUL([Rename(target, "r{}".format(i))]))
            store.flush("d")
        wall = time.perf_counter() - start
        stop.set()
        for thread in threads:
            thread.join(10)
    return sum(counts), wall, sum(overlapped)


def _build_corpus(rows):
    """A flat catalog big enough that walking hurts: ``rows`` three-node
    ``<row>`` records (element + attribute + text) and 20 rare
    ``<needle>`` elements sprinkled through them."""
    needle_every = max(1, rows // 20)
    parts = ["<cat>"]
    for i in range(rows):
        parts.append('<row k="k{}">v{}</row>'.format(i % 50, i))
        if i % needle_every == 0:
            parts.append("<needle>n{}</needle>".format(i))
    parts.append("</cat>")
    return "".join(parts)


#: the sweep, selective to dense: a 20-entry bucket, a value-predicate
#: step, and the bucket that contains nearly the whole document
SWEEP_QUERIES = ("//needle", '//row[@k = "k7"]', "//row")


def _run_selectivity(rows, reps, repeats):
    """Walker vs planner over one resident document; returns
    ``(document_size, [per-query result dicts])``."""
    with DocumentStore(backend="serial") as store:
        store.open("q", _build_corpus(rows))
        size = len(store.document("q"))
        sweep = []
        for query in SWEEP_QUERIES:
            walked = store.query("q", query, engine="walk")
            served = store.query("q", query, explain=True)
            assert walked["nodes"] == served["nodes"]  # byte identity
            times = {}
            for engine in ("walk", "auto"):
                best = None
                for __ in range(repeats):
                    start = time.perf_counter()
                    for __ in range(reps):
                        store.query("q", query, engine=engine)
                    wall = time.perf_counter() - start
                    if best is None or wall < best:
                        best = wall
                times[engine] = best
            sweep.append({
                "query": query,
                "matches": served["count"],
                "mode": served["plan"]["mode"],
                "walk_s": times["walk"],
                "indexed_s": times["auto"],
                "speedup": (times["walk"] / times["auto"]
                            if times["auto"] else float("inf")),
            })
    return size, sweep


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="read throughput under continuous slow writes: "
                    "MVCC pinned reads vs flush-locked reads")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="XMark document scale")
    parser.add_argument("--readers", type=int, default=4,
                        help="concurrent reader threads")
    parser.add_argument("--rounds", type=int, default=8,
                        help="writer flushes per pass (each slowed by "
                             "{:.0f}ms of apply)".format(
                                 APPLY_SLEEP_S * 1000))
    parser.add_argument("--repeats", type=int, default=2,
                        help="passes per arm; the summary keeps the "
                             "best (variance control)")
    parser.add_argument("--query-rows", type=int, default=2000,
                        help="catalog rows for the selectivity sweep "
                             "(3 nodes each; 2000 rows ~ 6k nodes)")
    parser.add_argument("--query-reps", type=int, default=25,
                        help="query executions per timed pass of the "
                             "selectivity sweep")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary here")
    args = parser.parse_args(argv)

    results = {}
    for arm in ("mvcc", "locked"):
        best = None
        for __ in range(args.repeats):
            reads, wall, overlapped = _run_arm(
                args.scale, args.readers, args.rounds, arm)
            rate = reads / wall if wall else float("inf")
            if best is None or rate > best[0]:
                best = (rate, wall, reads, overlapped)
        results[arm] = best
        print("{:>7}: {:>8.0f} reads/s  ({} reads in {:.3f}s, "
              "{} completed mid-apply)".format(
                  arm, best[0], best[2], best[1], best[3]))

    mvcc_rate, mvcc_wall, __, mvcc_overlap = results["mvcc"]
    locked_rate = results["locked"][0]
    overlap = mvcc_rate / locked_rate if locked_rate else float("inf")
    print("\nread/write overlap: MVCC serves {:.2f}x the locked "
          "baseline's reads under identical write load".format(overlap))
    if mvcc_overlap == 0:
        print("WARNING: no MVCC read completed during an apply window "
              "-- the write load never materialized")

    size, sweep = _run_selectivity(args.query_rows, args.query_reps,
                                   args.repeats)
    print("\nselectivity sweep over a {}-node document "
          "({} runs per arm):".format(size, args.query_reps))
    for row in sweep:
        print("  {:>18}  {:>5} match(es)  {:>7}  walk {:7.1f}ms  "
              "indexed {:7.1f}ms  {:5.1f}x".format(
                  row["query"], row["matches"], row["mode"],
                  row["walk_s"] * 1000, row["indexed_s"] * 1000,
                  row["speedup"]))
    index_speedup = sweep[0]["speedup"]   # the selective //needle arm

    if args.json:
        payload = {"bench_query_serving": {
            "ops_per_sec": mvcc_rate,
            "median_wall_s": mvcc_wall,
            "locked_ops_per_sec": locked_rate,
            "read_write_overlap": overlap,
            "reads_during_apply": mvcc_overlap,
            "readers": args.readers,
            "index_speedup": index_speedup,
            "query_document_nodes": size,
            "selectivity_sweep": sweep,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
