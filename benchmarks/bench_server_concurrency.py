"""Network-server throughput: connections x pipelining depth.

The experiment behind the PR 4 serving claim: the asyncio
:class:`~repro.api.server.StoreServer` multiplexes many concurrent
connections onto one resident :class:`DocumentStore`, and *pipelining*
(a client keeping several requests in flight on one connection)
amortizes the per-request round trip — so ops/sec rises with depth
until the store itself, not the transport, is the bottleneck.

Each configuration runs a fresh server on its *own thread and event
loop* (TCP on an ephemeral localhost port — the loopback stack and the
cross-thread wakeup are part of what is being measured, exactly like a
separate server process minus the fork cost) and ``--connections``
async clients on the measuring loop, one resident document per client.
Every client issues ``--ops`` requests with at most ``depth`` in
flight: XQuery-update submissions (compiled server-side against the
resident tree) with a ``flush`` folded in every ``--flush-every``
requests, so the measured mix covers the full protocol path — frame
codec, dispatch, compile, queue, coalesce, sharded reduce, apply.

Usage::

    python benchmarks/bench_server_concurrency.py \
        --connections 8 --ops 200 --depths 1 4 16 --json out.json
"""

import argparse
import asyncio
import json
import sys
import threading
import time

from repro.api.client import AsyncStoreClient
from repro.api.server import StoreServer
from repro.store.store import DocumentStore

DOC_TEXT = "<doc><items/><meta><owner>bench</owner></meta></doc>"
EXPR = 'insert node <x/> as last into /doc/items'


class _ServerThread:
    """A StoreServer on a dedicated thread with its own event loop, so
    client requests pay a real cross-thread round trip (pipelining has
    actual latency to hide, as against a separate server process)."""

    def __init__(self, workers, backend):
        self._workers = workers
        self._backend = backend
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.address = None
        self.error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:      # noqa: BLE001 — re-raised
            self.error = exc
        finally:
            # set unconditionally: a bind failure must fail the
            # benchmark, not park __enter__ on the event forever
            self._ready.set()

    async def _main(self):
        server = StoreServer(
            DocumentStore(workers=self._workers, backend=self._backend),
            host="127.0.0.1", port=0)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.address = server.tcp_address
        self._ready.set()
        await self._stop.wait()
        await server.aclose(drain=False)

    def __enter__(self):
        self._thread.start()
        self._ready.wait()
        if self.error is not None:
            self._thread.join()
            raise self.error
        return self

    def __exit__(self, *exc_info):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()


async def _session(host, port, index, ops, depth, flush_every):
    client = await AsyncStoreClient.connect(
        host=host, port=port, client="c{}".format(index))
    doc_id = "d{}".format(index)
    await client.open(doc_id, DOC_TEXT)
    gate = asyncio.Semaphore(depth)

    async def one_request(serial):
        async with gate:
            if serial % flush_every == flush_every - 1:
                await client.flush(doc_id)
            elif serial % 2:
                # realistic sessions poll state between submissions;
                # the cheap reads are also where pipelining pays, since
                # their round trip is pure latency
                await client.stats(doc_id)
            else:
                await client.submit_xquery(doc_id, EXPR)

    await asyncio.gather(*[one_request(serial)
                           for serial in range(ops)])
    await client.flush(doc_id)
    await client.aclose()


async def _run_clients(host, port, connections, ops, depth,
                       flush_every):
    start = time.perf_counter()
    await asyncio.gather(*[
        _session(host, port, index, ops, depth, flush_every)
        for index in range(connections)])
    return time.perf_counter() - start


def measure(connections, ops, depth, flush_every, workers, backend,
            repeats):
    """Best-of-``repeats`` wall time for one configuration."""
    best = None
    for __ in range(max(1, repeats)):
        with _ServerThread(workers, backend) as server:
            host, port = server.address
            wall = asyncio.run(_run_clients(
                host, port, connections, ops, depth, flush_every))
        if best is None or wall < best:
            best = wall
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="network-server ops/sec over connections x "
                    "pipelining depth")
    parser.add_argument("--connections", type=int, default=8,
                        help="concurrent client connections")
    parser.add_argument("--ops", type=int, default=200,
                        help="requests per connection")
    parser.add_argument("--depths", type=int, nargs="+",
                        default=[1, 4, 16],
                        help="pipelining depths to sweep")
    parser.add_argument("--flush-every", type=int, default=25,
                        help="fold a flush into every Nth request")
    parser.add_argument("--workers", type=int, default=2,
                        help="store reduction workers")
    parser.add_argument("--backend", default="thread",
                        choices=("process", "thread", "serial"))
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per depth; the summary keeps the "
                             "best (variance control for the CI gate)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary here")
    args = parser.parse_args(argv)

    total_requests = args.connections * args.ops
    print("== {} connections x {} requests (flush every {}) ==".format(
        args.connections, args.ops, args.flush_every))
    depths = {}
    for depth in args.depths:
        wall = measure(args.connections, args.ops, depth,
                       args.flush_every, args.workers, args.backend,
                       args.repeats)
        rate = total_requests / wall if wall else float("inf")
        depths[depth] = {"wall_s": wall, "ops_per_sec": rate}
        print("depth {:>3}: {:8.3f}s  {:>10.0f} ops/s".format(
            depth, wall, rate))

    shallow = depths[min(depths)]["ops_per_sec"]
    best_depth = max(depths, key=lambda d: depths[d]["ops_per_sec"])
    best = depths[best_depth]
    scaling = best["ops_per_sec"] / shallow if shallow else float("inf")
    print("\npipelining summary: depth {} reaches {:.0f} ops/s, "
          "{:.2f}x over depth {}".format(
              best_depth, best["ops_per_sec"], scaling, min(depths)))

    if args.json:
        payload = {"bench_server_concurrency": {
            "ops_per_sec": best["ops_per_sec"],
            "median_wall_s": best["wall_s"],
            "pipelining_speedup": scaling,
            "best_depth": best_depth,
            "connections": args.connections,
            "depths": {str(depth): metrics
                       for depth, metrics in depths.items()},
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
