"""Figure 6e — integration and conflict resolution.

The paper integrates 10 PULs of 4k-80k operations each, half of the
operations involved in conflicts averaging 5 operations, 1/5 of the
conflicts solved through cascades; integration remains cost effective.
Sizes scaled /10.
"""

import pytest

from repro.integration import integrate, reconcile
from repro.workloads import generate_conflicting_puls

SIZES = (400, 1600, 8000)
PUL_COUNT = 10


@pytest.fixture(scope="module")
def families(xmark_medium, xmark_medium_oracle):
    prepared = {}
    for size in SIZES:
        puls, __ = generate_conflicting_puls(
            xmark_medium, pul_count=PUL_COUNT, ops_per_pul=size,
            conflict_fraction=0.5, ops_per_conflict=5,
            cascade_fraction=0.2, seed=19)
        prepared[size] = puls
    return prepared


@pytest.mark.parametrize("size", SIZES)
def test_integrate(benchmark, families, xmark_medium_oracle, size):
    puls = families[size]
    result = benchmark(integrate, puls, structure=xmark_medium_oracle)
    assert result.has_conflicts


@pytest.mark.parametrize("size", SIZES)
def test_reconcile(benchmark, families, xmark_medium_oracle, size):
    puls = families[size]

    def run():
        return reconcile(puls, policies={},
                         structure=xmark_medium_oracle)

    result = benchmark(run)
    assert len(result) > 0
