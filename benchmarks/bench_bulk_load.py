"""Streaming bulk load vs per-document opens — the group-fsync bench.

The ETL claim behind ``repro store import``: making a corpus resident
through per-document :meth:`DocumentStore.open` pays one WAL
append+fsync per document, while :meth:`DocumentStore.bulk_load`
chunks amortize one group ``sync`` over the whole chunk
(:meth:`DurabilityManager.log_open_many`) — so durable load throughput
rises with chunk size while fsyncs-per-document falls toward ``1/N``.

Each pass loads ``--docs`` synthetic documents into a fresh log-durable
store, once per document and once in ``--chunk-docs`` chunks; both
paths end with the same resident, recoverable state.

Usage::

    python benchmarks/bench_bulk_load.py --docs 200 --chunk-docs 64
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import repro.store.durability.wal as wal_module
from repro.store import DocumentStore

DOC_TEMPLATE = ("<doc><meta><id>{0}</id><owner>etl</owner></meta>"
                "<items>{1}</items></doc>")


class _FsyncCounter:
    """Wraps ``os.fsync`` inside the WAL module to count calls."""

    def __init__(self):
        self.count = 0
        self._real = os.fsync

    def __enter__(self):
        def counting(fd):
            self.count += 1
            return self._real(fd)
        wal_module.os.fsync = counting
        return self

    def __exit__(self, *exc_info):
        wal_module.os.fsync = self._real


def make_corpus(docs, items=20):
    body = "".join('<i n="{0}"><v>{0}</v></i>'.format(index)
                   for index in range(items))
    return [("d{}".format(index), DOC_TEMPLATE.format(index, body))
            for index in range(docs)]


def run_per_doc(corpus, wal_dir):
    with DocumentStore(workers=1, backend="serial", durability="log",
                       wal_dir=wal_dir) as store:
        with _FsyncCounter() as counter:
            start = time.perf_counter()
            for doc_id, text in corpus:
                store.open(doc_id, text)
            wall = time.perf_counter() - start
    return wall, counter.count


def run_bulk(corpus, wal_dir, chunk_docs):
    with DocumentStore(workers=1, backend="serial", durability="log",
                       wal_dir=wal_dir) as store:
        with _FsyncCounter() as counter:
            start = time.perf_counter()
            for offset in range(0, len(corpus), chunk_docs):
                store.bulk_load(corpus[offset:offset + chunk_docs])
            wall = time.perf_counter() - start
    return wall, counter.count


def measure(runner, repeats):
    best = None
    for __ in range(max(1, repeats)):
        wal_dir = tempfile.mkdtemp(prefix="bench-bulk-load-")
        try:
            wall, fsyncs = runner(wal_dir)
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
        if best is None or wall < best[0]:
            best = (wall, fsyncs)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="chunked bulk load vs per-document durable opens")
    parser.add_argument("--docs", type=int, default=200,
                        help="documents per pass")
    parser.add_argument("--items", type=int, default=20,
                        help="item elements per document")
    parser.add_argument("--chunk-docs", type=int, default=64,
                        help="documents per bulk-load chunk")
    parser.add_argument("--repeats", type=int, default=3,
                        help="passes per path; the summary keeps the "
                             "best (variance control)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary here")
    args = parser.parse_args(argv)

    corpus = make_corpus(args.docs, args.items)
    corpus_bytes = sum(len(text) for __, text in corpus)

    per_doc_wall, per_doc_fsyncs = measure(
        lambda d: run_per_doc(corpus, d), args.repeats)
    per_doc_rate = args.docs / per_doc_wall if per_doc_wall \
        else float("inf")
    print("per-document open: {} docs  {:8.3f}s  {:>8.0f} docs/s  "
          "{:.2f} fsyncs/doc".format(
              args.docs, per_doc_wall, per_doc_rate,
              per_doc_fsyncs / args.docs))

    bulk_wall, bulk_fsyncs = measure(
        lambda d: run_bulk(corpus, d, args.chunk_docs), args.repeats)
    bulk_rate = args.docs / bulk_wall if bulk_wall else float("inf")
    mb_per_s = (corpus_bytes / bulk_wall / 1e6) if bulk_wall \
        else float("inf")
    fsyncs_per_doc = bulk_fsyncs / args.docs if args.docs else 0.0
    print("bulk load ({} per chunk): {} docs  {:8.3f}s  "
          "{:>8.0f} docs/s  {:6.1f} MB/s  {:.2f} fsyncs/doc".format(
              args.chunk_docs, args.docs, bulk_wall, bulk_rate,
              mb_per_s, fsyncs_per_doc))

    speedup = bulk_rate / per_doc_rate if per_doc_rate \
        else float("inf")
    print("\nbulk-load summary: {:.2f}x the per-document durable "
          "rate at {:.0%} of its fsync bill".format(
              speedup, (bulk_fsyncs / per_doc_fsyncs
                        if per_doc_fsyncs else 0.0)))

    if args.json:
        payload = {"bench_bulk_load": {
            "ops_per_sec": bulk_rate,
            "median_wall_s": bulk_wall,
            "mb_per_sec": mb_per_s,
            "per_doc_ops_per_sec": per_doc_rate,
            "bulk_speedup": speedup,
            "fsyncs_per_doc": fsyncs_per_doc,
            "docs": args.docs,
            "chunk_docs": args.chunk_docs,
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
