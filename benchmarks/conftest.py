"""Shared fixtures for the figure benchmarks.

Workloads are scaled down from the paper's testbed (16 GB / 256 MB
documents) to container-friendly sizes; every sweep keeps the paper's
progression shape. Session-scoped fixtures build each workload once.
"""

import pytest

from repro.labeling import ContainmentLabeling
from repro.reasoning import DocumentOracle
from repro.workloads import generate_xmark
from repro.xdm.serializer import serialize


@pytest.fixture(scope="session")
def xmark_small():
    """~30 KB document."""
    return generate_xmark(scale=0.025, seed=7)


@pytest.fixture(scope="session")
def xmark_medium():
    """~300 KB document."""
    return generate_xmark(scale=0.25, seed=7)


@pytest.fixture(scope="session")
def xmark_medium_text(xmark_medium):
    return serialize(xmark_medium)


@pytest.fixture(scope="session")
def xmark_medium_oracle(xmark_medium):
    return DocumentOracle(xmark_medium)


@pytest.fixture(scope="session")
def xmark_medium_labeling(xmark_medium):
    return ContainmentLabeling().build(xmark_medium)
