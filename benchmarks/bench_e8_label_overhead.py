"""E8 — storage overhead of in-document identifiers and labels.

Section 6 reports that storing node identifiers and labeling within the
document makes it "approximatively 3 times bigger". This benchmark
measures our serialized sizes with and without the embedded metadata and
records the factor.
"""

from repro.labeling import ContainmentLabeling
from repro.xdm.serializer import serialize


def test_label_overhead_factor(benchmark, xmark_small):
    labeling = ContainmentLabeling().build(xmark_small)
    labels = {node_id: label.to_string()
              for node_id, label in labeling.as_mapping().items()}

    def run():
        plain = serialize(xmark_small)
        stored = serialize(xmark_small, with_ids=True, labels=labels)
        return len(plain), len(stored)

    plain_size, stored_size = benchmark(run)
    factor = stored_size / plain_size
    benchmark.extra_info["overhead_factor"] = round(factor, 2)
    # the paper reports ~3x; anything in that ballpark confirms the shape
    assert factor > 1.5
