"""Change-feed subscription throughput and freshness over real sockets.

A log-durable leader is served by a :class:`StoreServer` on its own
thread; a writer client flushes batches while a subscriber client
streams the raw feed through ``subscribe`` long-polls and applies it to
a :class:`~repro.cdc.DocumentMirror`. Reported:

* ``events_per_sec`` — drain rate of the subscription path (decode,
  token mint, wire, mirror apply);
* ``freshness_ms`` — median flush→event latency: the wall time from a
  durable flush ack to the subscriber holding the matching batch event
  via a parked long-poll (the push-latency equivalent of the follower
  ``wal-segment`` path);
* byte-identity of the mirror against the leader, asserted, so the
  bench cannot drift from correctness.

Usage::

    python benchmarks/bench_cdc.py --writes 150 --poll-writes 20
"""

import argparse
import asyncio
import json
import shutil
import statistics
import sys
import tempfile
import threading
import time

from repro.api.client import StoreClient
from repro.api.server import StoreServer
from repro.cdc import DocumentMirror
from repro.store import DocumentStore

DOC_TEXT = "<doc><meta><owner>bench</owner></meta><items/></doc>"
EXPR = 'insert node <x a="1"><v>payload text</v></x> as last into ' \
       '/doc/items'


class _ServerThread:
    """A StoreServer on a dedicated thread with its own event loop, so
    subscriber long-polls pay real cross-thread wakeups."""

    def __init__(self, wal_dir):
        self._wal_dir = wal_dir
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.address = None
        self.error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:      # noqa: BLE001 — re-raised
            self.error = exc
        finally:
            self._ready.set()

    async def _main(self):
        store = DocumentStore(workers=1, backend="serial",
                              durability="log", wal_dir=self._wal_dir)
        store.enable_replication()
        server = StoreServer(store, host="127.0.0.1", port=0)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.address = server.tcp_address
        self._ready.set()
        await self._stop.wait()
        await server.aclose(drain=False)

    def __enter__(self):
        self._thread.start()
        self._ready.wait()
        if self.error is not None:
            self._thread.join()
            raise self.error
        return self

    def __exit__(self, *exc_info):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()


def drain(client, mirror, token, max_events):
    """Poll until dry; returns ``(next token, events applied)``."""
    applied = 0
    while True:
        page = client.subscribe_once(from_token=token, decode=False,
                                     max_events=max_events)
        token = page["token"]
        if not page["events"]:
            return token, applied
        mirror.apply_all(page["events"])
        applied += len(page["events"])


def run_pass(address, writes, poll_writes, max_events):
    host, port = address
    writer = StoreClient.connect(host=host, port=port, client="writer")
    subscriber = StoreClient.connect(host=host, port=port,
                                     client="subscriber")
    mirror = DocumentMirror()
    try:
        token = subscriber.subscribe_once()["token"]
        writer.open("d", DOC_TEXT)
        for __ in range(writes):
            writer.submit_xquery("d", EXPR)
            writer.flush("d")
        # throughput: drain the whole backlog through the wire
        start = time.perf_counter()
        token, applied = drain(subscriber, mirror, token, max_events)
        drain_wall = time.perf_counter() - start
        assert mirror.text("d") == writer.text("d")["text"]

        # freshness: a parked long-poll races each durable flush
        latencies = []
        for __ in range(poll_writes):
            box = {}

            def parked(from_token=token):
                box["page"] = subscriber.subscribe_once(
                    from_token=from_token, decode=False, wait_s=10.0)
                box["at"] = time.perf_counter()

            poller = threading.Thread(target=parked)
            poller.start()
            time.sleep(0.005)           # let the poll park server-side
            writer.submit_xquery("d", EXPR)
            writer.flush("d")
            flushed_at = time.perf_counter()
            poller.join()
            page = box["page"]
            assert page["events"], "long-poll returned dry"
            latencies.append(max(0.0, box["at"] - flushed_at))
            mirror.apply_all(page["events"])
            token = page["token"]
        token, __ = drain(subscriber, mirror, token, max_events)
        assert mirror.text("d") == writer.text("d")["text"]
    finally:
        subscriber.close()
        writer.close()
    return applied, drain_wall, latencies


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="CDC subscription throughput and flush-to-event "
                    "freshness")
    parser.add_argument("--writes", type=int, default=150,
                        help="flushed batches in the drain backlog")
    parser.add_argument("--poll-writes", type=int, default=20,
                        help="timed flush-vs-parked-poll races")
    parser.add_argument("--max-events", type=int, default=64,
                        help="events per subscription page")
    parser.add_argument("--repeats", type=int, default=2,
                        help="passes; the summary keeps the best "
                             "(variance control)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable summary here")
    args = parser.parse_args(argv)

    best = None
    for __ in range(max(1, args.repeats)):
        wal_dir = tempfile.mkdtemp(prefix="bench-cdc-")
        try:
            with _ServerThread(wal_dir) as node:
                applied, wall, latencies = run_pass(
                    node.address, args.writes, args.poll_writes,
                    args.max_events)
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
        rate = applied / wall if wall else float("inf")
        if best is None or rate > best[0]:
            best = (rate, applied, wall, latencies)

    rate, applied, wall, latencies = best
    freshness_ms = 1000 * statistics.median(latencies)
    print("drain: {} events  {:8.3f}s  {:>8.0f} events/s".format(
        applied, wall, rate))
    print("freshness: median {:.2f} ms flush->event over {} parked "
          "polls (p max {:.2f} ms)".format(
              freshness_ms, len(latencies),
              1000 * max(latencies)))
    print("\ncdc summary: mirror byte-identical to the leader at "
          "{:>6.0f} events/s, {:.2f} ms freshness".format(
              rate, freshness_ms))

    if args.json:
        payload = {"bench_cdc": {
            "ops_per_sec": rate,
            "median_wall_s": wall,
            "events": applied,
            "freshness_ms": freshness_ms,
            "max_freshness_ms": 1000 * max(latencies),
        }}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
